//! Property-based invariants of the simulated database server.

use dasr_containers::ResourceVector;
use dasr_engine::request::{Op, RequestSpec};
use dasr_engine::{Engine, EngineConfig, SimTime};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..20_000).prop_map(|us| Op::CpuBurst { us }),
        (0u64..2_000, any::<bool>()).prop_map(|(page, write)| Op::PageAccess { page, write }),
        (1u32..8_192).prop_map(|bytes| Op::LogWrite { bytes }),
        (0u32..4, any::<bool>()).prop_map(|(lock, exclusive)| Op::LockAcquire { lock, exclusive }),
        (1u32..32).prop_map(|mb| Op::MemoryGrant { mb }),
        (1u64..5_000).prop_map(|us| Op::Think { us }),
    ]
}

fn arb_spec() -> impl Strategy<Value = RequestSpec> {
    prop::collection::vec(arb_op(), 1..10).prop_map(|mut ops| {
        // Enforce the engine's documented deadlock-avoidance discipline:
        // grants before locks, and locks in increasing id order. We sort
        // the *blocking acquisition* ops to the discipline while leaving
        // the rest of the op sequence as generated.
        let mut lock_ids: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                Op::LockAcquire { lock, .. } => Some(*lock),
                _ => None,
            })
            .collect();
        lock_ids.sort_unstable();
        lock_ids.dedup();
        let mut next = 0;
        let mut seen = std::collections::HashSet::new();
        for op in ops.iter_mut() {
            if let Op::LockAcquire { lock, .. } = op {
                // Rewrite to the next unseen id in increasing order.
                while next < lock_ids.len() && seen.contains(&lock_ids[next]) {
                    next += 1;
                }
                if next < lock_ids.len() {
                    *lock = lock_ids[next];
                    seen.insert(lock_ids[next]);
                }
            }
        }
        // Move any grant op to the front (one grant per request anyway).
        ops.sort_by_key(|op| !matches!(op, Op::MemoryGrant { .. }));
        RequestSpec::new(ops)
    })
}

fn container() -> ResourceVector {
    ResourceVector::new(2.0, 256.0, 400.0, 20.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted request either completes or is rejected; none are
    /// lost, and all latencies are positive and finite.
    #[test]
    fn requests_are_conserved(specs in prop::collection::vec(arb_spec(), 1..60)) {
        let mut e = Engine::new(EngineConfig::default(), container());
        let n = specs.len() as u64;
        for (i, spec) in specs.into_iter().enumerate() {
            e.submit_at(SimTime::from_micros(i as u64 * 731), spec);
        }
        e.run_until(SimTime::from_secs(600));
        let s = e.end_interval();
        prop_assert_eq!(s.completed + s.rejected, n, "lost requests");
        prop_assert_eq!(s.outstanding, 0, "everything must drain");
        prop_assert!(s.latencies_ms.iter().all(|l| l.is_finite() && *l >= 0.0));
    }

    /// Utilization percentages stay in [0, 100] and wait accounting is
    /// non-negative under arbitrary mixes.
    #[test]
    fn telemetry_stays_in_range(specs in prop::collection::vec(arb_spec(), 1..40)) {
        let mut e = Engine::new(EngineConfig::default(), container());
        for (i, spec) in specs.into_iter().enumerate() {
            e.submit_at(SimTime::from_micros(i as u64 * 997), spec);
        }
        e.run_until(SimTime::from_mins(1));
        let s = e.end_interval();
        for v in [s.cpu_util_pct, s.mem_util_pct, s.disk_util_pct, s.log_util_pct] {
            prop_assert!((0.0..=100.0).contains(&v), "utilization {v}");
        }
        prop_assert!(s.waits.total() < u64::MAX / 2);
    }

    /// Resizing mid-run (any direction) never loses requests or panics.
    #[test]
    fn resize_under_random_load_is_safe(
        specs in prop::collection::vec(arb_spec(), 1..40),
        up in any::<bool>(),
    ) {
        let mut e = Engine::new(EngineConfig::default(), container());
        let n = specs.len() as u64;
        for (i, spec) in specs.into_iter().enumerate() {
            e.submit_at(SimTime::from_micros(i as u64 * 499), spec);
        }
        e.run_until(SimTime::from_millis(10));
        let target = if up {
            ResourceVector::new(16.0, 4_096.0, 3_200.0, 160.0)
        } else {
            ResourceVector::new(0.5, 64.0, 100.0, 5.0)
        };
        e.apply_resources(target);
        e.run_until(SimTime::from_secs(600));
        let s = e.end_interval();
        prop_assert_eq!(s.completed + s.rejected, n);
        prop_assert_eq!(s.outstanding, 0);
    }

    /// Determinism: identical inputs yield identical telemetry.
    #[test]
    fn deterministic_under_random_specs(specs in prop::collection::vec(arb_spec(), 1..30)) {
        let run = |specs: &[RequestSpec]| {
            let mut e = Engine::new(EngineConfig::default(), container());
            for (i, spec) in specs.iter().enumerate() {
                e.submit_at(SimTime::from_micros(i as u64 * 613), spec.clone());
            }
            e.run_until(SimTime::from_secs(300));
            let s = e.end_interval();
            (s.completed, s.waits, s.latencies_ms.clone(), s.disk_reads)
        };
        prop_assert_eq!(run(&specs), run(&specs));
    }
}
