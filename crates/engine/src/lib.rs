//! # dasr-engine — a discrete-event multi-resource database-server simulator
//!
//! The paper prototyped its auto-scaler inside Microsoft Azure SQL Database;
//! the estimator itself, however, only consumes *generic* engine telemetry:
//! per-resource utilization, per-wait-class wait times, and request
//! latencies (§3). This crate is the substitute substrate — a deterministic
//! discrete-event simulation of a database server inside a resource
//! container, producing exactly that telemetry from first-principles
//! queueing behaviour:
//!
//! - [`cpu`] — a multi-core scheduler with fractional-core speeds; time in
//!   the ready queue is the **signal wait** (`WaitClass::Cpu`);
//! - [`bufferpool`] — an LRU page cache sized by the container's memory,
//!   with **ballooning** support (§4.3): gradual shrink toward a target and
//!   instrumentation of the resulting extra disk I/O;
//! - [`device`] — FIFO rate-limited devices for data-file I/O (IOPS) and
//!   transaction-log writes (MB/s); queue + service time is the I/O wait;
//! - [`locks`] — a FIFO shared/exclusive lock manager producing the
//!   *application-level* lock waits that Figure 13 shows extra resources
//!   cannot fix;
//! - [`grants`] — memory-grant admission control producing memory waits;
//! - [`waits`] / [`meter`] — the simulator's `sys.dm_os_wait_stats` and
//!   utilization counters;
//! - [`engine`] — the event loop tying it together, with online container
//!   resizing.
//!
//! Requests are sequences of [`request::Op`]s (CPU bursts, page accesses,
//! log writes, lock acquisitions, memory grants, think time). Workload
//! generators live in `dasr-workloads`.
//!
//! The decision loop never calls this crate directly: it observes and
//! actuates through the `TelemetrySource`/`ResizeActuator` traits in
//! `dasr-telemetry`, with the engine wrapped as `dasr_core`'s
//! `SimulatorSource` — one backend among others (e.g. recorded-run
//! replay). Nothing here changed for that seam; [`Engine`]'s public
//! stepping/resize/balloon API *is* the adapter surface.
//!
//! ## Invariants (tested)
//!
//! - Wait conservation: request latency = CPU service + think time + the sum
//!   of all recorded waits for that request.
//! - Utilization never exceeds 100% of the allocated capacity.
//! - Determinism: identical inputs produce identical telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface errors, not crash or chat on stdout:
// unwraps are for tests, printing is for the bench/lint CLIs, and
// float equality is only meaningful in the stats oracle tests.
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod bufferpool;
pub mod config;
pub mod cpu;
pub mod device;
pub mod engine;
pub mod governor;
pub mod grants;
pub mod locks;
pub mod meter;
pub mod oracle;
pub mod request;
pub mod slab;
pub mod time;
pub mod waits;
pub mod wheel;

pub use config::EngineConfig;
pub use engine::{Engine, IntervalStats};
pub use oracle::OracleEngine;
pub use request::{Op, RequestSpec};
pub use time::SimTime;
pub use waits::{WaitClass, WaitStats, WAIT_CLASSES};
