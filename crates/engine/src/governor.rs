//! Credit-based rate governance (paced FIFO queues).
//!
//! Commercial DaaS containers enforce resource allocations the way resource
//! governors do: an *isolated* operation runs at hardware speed, and
//! throttling appears only when the sustained consumption rate exceeds the
//! allocation. Modeling devices as plain FIFO servers with service time
//! `1/rate` would make small containers slow even at idle — and would break
//! the paper's premise that a latency goal of `1.25 × Max` is achievable on
//! a container a fraction of `Max`'s size.
//!
//! [`PacedQueue`] implements the governance: operations queue FIFO and are
//! dispatched while the governor's virtual time `vt` (cumulative admitted
//! work at the allocated rate) has not overrun the clock; `vt` may lag the
//! clock by a bounded *burst allowance*, so short bursts run unthrottled.
//! Because queued work is not yet committed to `vt`, a container resize
//! immediately re-rates the backlog — scaling up drains an overloaded
//! queue faster, exactly like a real governor.

use std::collections::VecDeque;

/// An operation released by the governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatched<P> {
    /// Caller payload.
    pub payload: P,
    /// Dispatch time, µs.
    pub start_us: u64,
    /// Time spent queued behind the governor, µs.
    pub queued_wait_us: u64,
}

/// A rate-governed FIFO queue.
#[derive(Debug)]
pub struct PacedQueue<P> {
    /// Consumption units admitted per microsecond.
    rate_per_us: f64,
    /// How far `vt` may lag behind the clock, µs (burst allowance).
    allowance_us: f64,
    /// Virtual time: end of the committed (dispatched) work, µs.
    vt: f64,
    queue: VecDeque<(P, f64, u64)>,
    /// Background operations, dispatched only when `queue` is empty
    /// (foreground I/O is never starved by writeback storms).
    low_queue: VecDeque<(P, f64, u64)>,
    /// Ready-event outstanding at this time, if any (dedup).
    ready_at: Option<u64>,
    /// Cumulative dispatched work, units (metering).
    consumed: f64,
}

impl<P: Copy> PacedQueue<P> {
    /// Creates a governor admitting `rate_per_us` units per microsecond
    /// with `allowance_us` of burst headroom. Starts with full credits.
    ///
    /// # Panics
    /// Panics unless the rate is positive and the allowance non-negative,
    /// both finite.
    pub fn new(rate_per_us: f64, allowance_us: f64) -> Self {
        assert!(
            rate_per_us.is_finite() && rate_per_us > 0.0,
            "rate must be positive"
        );
        assert!(
            allowance_us.is_finite() && allowance_us >= 0.0,
            "allowance must be non-negative"
        );
        Self {
            rate_per_us,
            allowance_us,
            vt: -allowance_us,
            queue: VecDeque::new(),
            low_queue: VecDeque::new(),
            ready_at: None,
            consumed: 0.0,
        }
    }

    /// Changes the admitted rate (container resize). Queued operations are
    /// re-rated immediately; already-dispatched work is unaffected.
    pub fn set_rate(&mut self, rate_per_us: f64) {
        assert!(
            rate_per_us.is_finite() && rate_per_us > 0.0,
            "rate must be positive"
        );
        self.rate_per_us = rate_per_us;
    }

    /// Current admitted rate, units per µs.
    pub fn rate_per_us(&self) -> f64 {
        self.rate_per_us
    }

    /// Enqueues an operation of `cost` units. Call [`pump`](Self::pump)
    /// afterwards to dispatch.
    pub fn submit(&mut self, payload: P, cost: f64, now_us: u64) {
        assert!(cost.is_finite() && cost >= 0.0, "invalid cost");
        self.queue.push_back((payload, cost, now_us));
    }

    /// Enqueues a *background* operation: it consumes credit like any
    /// other, but is only dispatched when no foreground operation waits.
    pub fn submit_low(&mut self, payload: P, cost: f64, now_us: u64) {
        assert!(cost.is_finite() && cost >= 0.0, "invalid cost");
        self.low_queue.push_back((payload, cost, now_us));
    }

    /// Dispatches every operation the credit allows at `now_us`, writing
    /// them into `out` (cleared first — callers own and reuse the buffer,
    /// so the hot path never allocates). Returns `Some(t)` when the caller
    /// must schedule a ready callback at `t` (the queue is non-empty and
    /// throttled, and no earlier callback is outstanding).
    pub fn pump(&mut self, now_us: u64, out: &mut Vec<Dispatched<P>>) -> Option<u64> {
        out.clear();
        let now = now_us as f64;
        if self.vt < now - self.allowance_us {
            self.vt = now - self.allowance_us;
        }
        while self.vt <= now {
            let Some((payload, cost, submitted)) = self
                .queue
                .pop_front()
                .or_else(|| self.low_queue.pop_front())
            else {
                break;
            };
            self.vt += cost / self.rate_per_us;
            self.consumed += cost;
            out.push(Dispatched {
                payload,
                start_us: now_us,
                queued_wait_us: now_us.saturating_sub(submitted),
            });
        }
        if self.queue.is_empty() && self.low_queue.is_empty() {
            None
        } else {
            let at = self.vt.ceil() as u64;
            match self.ready_at {
                Some(existing) if existing <= at => None,
                _ => {
                    self.ready_at = Some(at);
                    Some(at)
                }
            }
        }
    }

    /// Handles a ready callback scheduled for `at_us`: clears the dedup
    /// marker and pumps into `out` (cleared first).
    pub fn on_ready(
        &mut self,
        at_us: u64,
        now_us: u64,
        out: &mut Vec<Dispatched<P>>,
    ) -> Option<u64> {
        if self.ready_at == Some(at_us) {
            self.ready_at = None;
        }
        self.pump(now_us, out)
    }

    /// Operations waiting behind the governor (both priorities).
    pub fn queued(&self) -> usize {
        self.queue.len() + self.low_queue.len()
    }

    /// Throttle backlog at `now_us`: µs until credit is available again.
    pub fn backlog_us(&self, now_us: u64) -> f64 {
        (self.vt - now_us as f64).max(0.0)
    }

    /// Drains the dispatched-work meter (units since last call).
    pub fn take_consumed(&mut self) -> f64 {
        std::mem::take(&mut self.consumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Follows ready callbacks until the queue drains, returning
    /// `(payload, start_us)` in dispatch order.
    fn drain_from(q: &mut PacedQueue<u32>, mut ready: Option<u64>) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(at) = ready {
            ready = q.on_ready(at, at, &mut buf);
            out.extend(buf.iter().map(|d| (d.payload, d.start_us)));
        }
        out
    }

    #[test]
    fn isolated_work_dispatches_immediately() {
        let mut q = PacedQueue::new(0.5, 10_000.0);
        q.submit(1, 20_000.0, 1_000);
        let mut d = Vec::new();
        let ready = q.pump(1_000, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].start_us, 1_000);
        assert_eq!(d[0].queued_wait_us, 0);
        assert_eq!(ready, None);
    }

    #[test]
    fn fresh_queue_has_full_burst_credits() {
        // Allowance 1000 at rate 1: ~1000 units burst instantly at t=0.
        let mut q = PacedQueue::new(1.0, 1_000.0);
        for i in 0..3 {
            q.submit(i, 500.0, 0);
        }
        let mut d = Vec::new();
        let ready = q.pump(0, &mut d);
        assert_eq!(d.len(), 3);
        assert!(ready.is_none());
        // The 4th must wait until vt (now 500) passes. The scratch buffer
        // is cleared on entry, so stale dispatches never linger.
        q.submit(9, 500.0, 0);
        let ready = q.pump(0, &mut d);
        assert!(d.is_empty());
        assert_eq!(ready, Some(500));
    }

    #[test]
    fn sustained_overload_paces_fifo() {
        let mut q = PacedQueue::new(1.0, 0.0);
        for i in 0..4 {
            q.submit(i, 100.0, 0);
        }
        let mut first = Vec::new();
        let ready = q.pump(0, &mut first);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].payload, 0);
        let rest = drain_from(&mut q, ready);
        assert_eq!(
            rest.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "FIFO order"
        );
        assert_eq!(rest[0].1, 100);
        assert_eq!(rest[2].1, 300);
    }

    #[test]
    fn queued_wait_is_reported() {
        let mut q = PacedQueue::new(1.0, 0.0);
        q.submit(1, 500.0, 0);
        q.submit(2, 500.0, 0);
        let ready = q.pump(0, &mut Vec::new());
        let rest = drain_from(&mut q, ready);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].1, 500, "dispatched at vt");
    }

    #[test]
    fn ready_callbacks_are_deduplicated() {
        let mut q = PacedQueue::new(1.0, 0.0);
        q.submit(1, 1_000.0, 0);
        q.submit(2, 1_000.0, 0);
        let r1 = q.pump(0, &mut Vec::new());
        assert_eq!(r1, Some(1_000));
        // More submissions while throttled must not request earlier/equal
        // callbacks again.
        q.submit(3, 1_000.0, 0);
        let r2 = q.pump(0, &mut Vec::new());
        assert_eq!(r2, None);
    }

    #[test]
    fn resize_rerates_queued_backlog() {
        let mut q = PacedQueue::new(1.0, 0.0);
        for i in 0..10 {
            q.submit(i, 1_000.0, 0);
        }
        let mut first = Vec::new();
        let ready = q.pump(0, &mut first);
        assert_eq!(first.len(), 1);
        // At 1 unit/µs the last op would start at 9_000. Scale rate 10x:
        // the queued backlog re-rates to 100 µs per op.
        q.set_rate(10.0);
        let order = drain_from(&mut q, ready);
        assert_eq!(order.len(), 9);
        let last_start = order.last().unwrap().1;
        assert!(last_start <= 1_900, "backlog re-rated: {last_start}");
    }

    #[test]
    fn idle_accrues_at_most_the_allowance() {
        let mut q = PacedQueue::new(1.0, 100.0);
        q.submit(1, 1_000.0, 0);
        let _ = q.pump(0, &mut Vec::new());
        // Long idle: at t=1e6 only the 100-unit allowance has re-accrued.
        q.submit(2, 50.0, 1_000_000);
        q.submit(3, 60.0, 1_000_000);
        q.submit(4, 60.0, 1_000_000);
        let mut d = Vec::new();
        let ready = q.pump(1_000_000, &mut d);
        assert_eq!(d.len(), 2, "allowance covers roughly 110 units");
        assert!(ready.is_some());
    }

    #[test]
    fn metering_counts_dispatched_only() {
        let mut q = PacedQueue::new(1.0, 0.0);
        q.submit(1, 100.0, 0);
        q.submit(2, 100.0, 0);
        let _ = q.pump(0, &mut Vec::new());
        assert_eq!(q.take_consumed(), 100.0, "second op still queued");
        assert_eq!(q.queued(), 1);
        assert_eq!(q.take_consumed(), 0.0);
    }

    #[test]
    fn backlog_reporting() {
        let mut q = PacedQueue::new(1.0, 0.0);
        q.submit(1, 500.0, 0);
        let _ = q.pump(0, &mut Vec::new());
        assert_eq!(q.backlog_us(0), 500.0);
        assert_eq!(q.backlog_us(600), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _: PacedQueue<u8> = PacedQueue::new(0.0, 1.0);
    }
}
