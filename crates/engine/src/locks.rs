//! Application-level lock manager (strict two-phase locking, FIFO grants).
//!
//! Lock waits are the paper's canonical example of a *bottleneck beyond
//! resources* (Figure 13): when >90% of wait time is lock waits, adding CPU
//! or I/O cannot improve latency, and the estimator must refuse to scale
//! up. The table grants strictly in FIFO order (no barging): a shared
//! request queued behind a waiting exclusive request waits, which avoids
//! writer starvation and keeps the simulation deterministic.

use crate::time::SimTime;
use std::collections::{HashMap, VecDeque};

/// Identifier of a lockable object.
pub type LockId = u32;

pub use crate::request::ReqId;

#[derive(Debug, Default)]
struct LockState {
    /// Current holders; either many shared or one exclusive.
    holders: Vec<(ReqId, bool)>,
    /// FIFO waiters: `(request, exclusive, since)`.
    waiters: VecDeque<(ReqId, bool, SimTime)>,
}

impl LockState {
    fn compatible(&self, exclusive: bool) -> bool {
        if exclusive {
            self.holders.is_empty()
        } else {
            self.holders.iter().all(|&(_, x)| !x)
        }
    }
}

/// A waiter that has just been granted its lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantedWaiter {
    /// The resumed request.
    pub req: ReqId,
    /// How long it waited, in microseconds.
    pub wait_us: u64,
}

/// The lock table.
///
/// Empty `LockState` entries are kept in the map as a free-list of
/// allocated holder/waiter buffers: re-locking a recently released object
/// reuses its buffers instead of re-allocating, which matters on the
/// engine's lock-heavy hot path. [`active_locks`](Self::active_locks)
/// counts only non-empty states.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<LockId, LockState>,
    held: HashMap<ReqId, Vec<LockId>>,
    /// Reused buffer for the lock list drained in
    /// [`release_all`](Self::release_all).
    drain_scratch: Vec<LockId>,
}

impl LockTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `lock` for `req`. Returns `true` when granted
    /// immediately; otherwise the request is queued FIFO and the engine
    /// must block it.
    ///
    /// Re-acquiring a lock already held by `req` is a no-op grant (no
    /// upgrade support — workloads acquire the strongest mode first).
    // dasr-lint: no-alloc
    pub fn acquire(&mut self, req: ReqId, lock: LockId, exclusive: bool, now: SimTime) -> bool {
        let state = self.locks.entry(lock).or_default();
        if state.holders.iter().any(|&(r, _)| r == req) {
            return true;
        }
        if state.waiters.is_empty() && state.compatible(exclusive) {
            state.holders.push((req, exclusive));
            self.held.entry(req).or_default().push(lock);
            true
        } else {
            state.waiters.push_back((req, exclusive, now));
            false
        }
    }

    /// Releases one lock held by `req`, writing the waiters granted as a
    /// result into `out` (cleared first — the engine resumes them and
    /// charges their lock wait). The caller owns and reuses the buffer, so
    /// releasing never allocates.
    // dasr-lint: no-alloc
    pub fn release(
        &mut self,
        req: ReqId,
        lock: LockId,
        now: SimTime,
        out: &mut Vec<GrantedWaiter>,
    ) {
        out.clear();
        if let Some(state) = self.locks.get_mut(&lock) {
            state.holders.retain(|&(r, _)| r != req);
            if let Some(list) = self.held.get_mut(&req) {
                list.retain(|&l| l != lock);
            }
            Self::grant_from_queue(state, now, out);
            for g in out.iter() {
                self.held.entry(g.req).or_default().push(lock);
            }
        }
    }

    /// Releases every lock held by `req` (request completion under strict
    /// 2PL), writing all newly granted waiters into `out` (cleared first).
    // dasr-lint: no-alloc
    pub fn release_all(&mut self, req: ReqId, now: SimTime, out: &mut Vec<GrantedWaiter>) {
        out.clear();
        // Drain the held list through a reused scratch so the entry keeps
        // its capacity for the next request reusing this `ReqId` slot.
        self.drain_scratch.clear();
        if let Some(list) = self.held.get_mut(&req) {
            self.drain_scratch.append(list);
        }
        for i in 0..self.drain_scratch.len() {
            // dasr-lint: allow(G3) reason="index bounded by the same len() in the loop condition"
            let lock = self.drain_scratch[i];
            let start = out.len();
            if let Some(state) = self.locks.get_mut(&lock) {
                state.holders.retain(|&(r, _)| r != req);
                Self::grant_from_queue(state, now, out);
            }
            for j in start..out.len() {
                let g = out[j];
                self.held.entry(g.req).or_default().push(lock);
            }
        }
    }

    /// Removes `req` from every wait queue (request abort/rejection).
    // dasr-lint: no-alloc
    pub fn cancel_waits(&mut self, req: ReqId) {
        // dasr-lint: allow(D2) reason="order-independent mutation: removing one request from every queue commutes across visit order"
        for state in self.locks.values_mut() {
            state.waiters.retain(|&(r, _, _)| r != req);
        }
    }

    /// Number of requests currently waiting across all locks.
    pub fn waiting(&self) -> usize {
        // dasr-lint: allow(D2) reason="order-independent fold: a sum over queue lengths is invariant to iteration order"
        self.locks.values().map(|s| s.waiters.len()).sum()
    }

    /// Locks with at least one holder or waiter. Empty states linger in
    /// the map as recycled buffers and are not counted.
    pub fn active_locks(&self) -> usize {
        self.locks
            // dasr-lint: allow(D2) reason="order-independent fold: counting non-empty states is invariant to iteration order"
            .values()
            .filter(|s| !s.holders.is_empty() || !s.waiters.is_empty())
            .count()
    }

    // dasr-lint: no-alloc
    fn grant_from_queue(state: &mut LockState, now: SimTime, out: &mut Vec<GrantedWaiter>) {
        // Strict FIFO: grant from the front while compatible.
        while let Some(&(req, exclusive, since)) = state.waiters.front() {
            if state.compatible(exclusive) {
                state.waiters.pop_front();
                state.holders.push((req, exclusive));
                out.push(GrantedWaiter {
                    req,
                    wait_us: now - since,
                });
                if exclusive {
                    break;
                }
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(0);

    #[test]
    fn shared_locks_coexist() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, false, T0));
        assert!(t.acquire(2, 10, false, T0));
        assert_eq!(t.waiting(), 0);
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, true, T0));
        assert!(!t.acquire(2, 10, false, T0));
        assert!(!t.acquire(3, 10, true, T0));
        assert_eq!(t.waiting(), 2);
    }

    #[test]
    fn release_grants_fifo() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, true, T0));
        assert!(!t.acquire(2, 10, false, SimTime(100)));
        assert!(!t.acquire(3, 10, false, SimTime(200)));
        let mut granted = Vec::new();
        t.release(1, 10, SimTime(1_000), &mut granted);
        // Both shared waiters are granted together, in order.
        assert_eq!(granted.len(), 2);
        assert_eq!(
            granted[0],
            GrantedWaiter {
                req: 2,
                wait_us: 900
            }
        );
        assert_eq!(
            granted[1],
            GrantedWaiter {
                req: 3,
                wait_us: 800
            }
        );
    }

    #[test]
    fn exclusive_waiter_granted_alone() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, false, T0));
        assert!(!t.acquire(2, 10, true, SimTime(10)));
        assert!(
            !t.acquire(3, 10, false, SimTime(20)),
            "no barging past X waiter"
        );
        let mut granted = Vec::new();
        t.release_all(1, SimTime(500), &mut granted);
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].req, 2);
        // 3 still waits until 2 releases. The scratch is cleared on entry.
        let mut granted2 = granted;
        t.release_all(2, SimTime(900), &mut granted2);
        assert_eq!(granted2.len(), 1);
        assert_eq!(
            granted2[0],
            GrantedWaiter {
                req: 3,
                wait_us: 880
            }
        );
    }

    #[test]
    fn reacquire_is_noop() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, true, T0));
        assert!(t.acquire(1, 10, true, T0));
        assert!(t.acquire(1, 10, false, T0));
        t.release_all(1, SimTime(5), &mut Vec::new());
        assert_eq!(t.active_locks(), 0);
    }

    #[test]
    fn release_all_spans_locks() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, true, T0));
        assert!(t.acquire(1, 11, true, T0));
        assert!(!t.acquire(2, 10, true, T0));
        assert!(!t.acquire(3, 11, true, T0));
        let mut granted = Vec::new();
        t.release_all(1, SimTime(100), &mut granted);
        let reqs: Vec<ReqId> = granted.iter().map(|g| g.req).collect();
        assert!(reqs.contains(&2) && reqs.contains(&3));
        assert_eq!(t.waiting(), 0);
    }

    #[test]
    fn cancel_waits_removes_from_queues() {
        let mut t = LockTable::new();
        assert!(t.acquire(1, 10, true, T0));
        assert!(!t.acquire(2, 10, true, T0));
        t.cancel_waits(2);
        let mut granted = Vec::new();
        t.release_all(1, SimTime(100), &mut granted);
        assert!(granted.is_empty());
        assert_eq!(t.active_locks(), 0, "empty lock states are not counted");
    }

    #[test]
    fn table_is_pruned_after_use() {
        let mut t = LockTable::new();
        for req in 0..100u64 {
            assert!(t.acquire(req, (req % 5) as LockId, false, T0));
        }
        let mut granted = Vec::new();
        for req in 0..100u64 {
            t.release_all(req, SimTime(10), &mut granted);
        }
        assert_eq!(t.active_locks(), 0);
    }
}
