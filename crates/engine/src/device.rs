//! Governed I/O devices (data disk and transaction log).
//!
//! Like the CPU, I/O allocations are credits: an isolated I/O completes at
//! hardware latency; throttle queueing appears only when the sustained rate
//! exceeds the container's IOPS / MB/s allocation. The *full* sojourn
//! (throttle queue + device latency) is the I/O wait the paper's telemetry
//! reports (PAGEIOLATCH-style waits include the I/O itself).

use crate::governor::{Dispatched, PacedQueue};
use crate::time::SimTime;

/// Hardware latency of one data-disk I/O (SSD-class), µs.
pub const DISK_BASE_LATENCY_US: u64 = 500;

/// Hardware latency of one log append (battery-backed write cache), µs.
pub const LOG_BASE_LATENCY_US: u64 = 300;

/// Burst headroom for I/O governance, µs of virtual-time lag (burst size in
/// operations scales with the allocated rate).
const IO_ALLOWANCE_US: f64 = 250_000.0;

/// What an I/O belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoToken {
    /// A request is blocked on this I/O.
    Request(u64),
    /// Background work (dirty-page writeback); nobody waits on it.
    Background,
}

/// A credit-governed I/O device.
#[derive(Debug)]
pub struct IoDevice {
    q: PacedQueue<IoToken>,
    base_latency_us: u64,
}

impl IoDevice {
    /// A data disk admitting `iops` operations per second (cost 1.0 per
    /// operation).
    pub fn disk(iops: f64) -> Self {
        assert!(iops.is_finite() && iops > 0.0, "iops must be positive");
        Self {
            q: PacedQueue::new(iops / 1_000_000.0, IO_ALLOWANCE_US),
            base_latency_us: DISK_BASE_LATENCY_US,
        }
    }

    /// A log device admitting `mbps` megabytes per second (1 MB = 10⁶
    /// bytes, i.e. `mbps` bytes per µs; cost is bytes).
    pub fn log(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps > 0.0, "mbps must be positive");
        Self {
            q: PacedQueue::new(mbps, IO_ALLOWANCE_US),
            base_latency_us: LOG_BASE_LATENCY_US,
        }
    }

    /// Changes the admitted rate (container resize). For a disk pass
    /// `iops / 1e6`; for a log pass `mbps`. The queued backlog re-rates
    /// immediately.
    pub fn set_rate_per_us(&mut self, rate_per_us: f64) {
        self.q.set_rate(rate_per_us);
    }

    /// Current admitted rate, units per µs.
    pub fn rate_per_us(&self) -> f64 {
        self.q.rate_per_us()
    }

    /// Device latency applied after dispatch, µs.
    pub fn base_latency_us(&self) -> u64 {
        self.base_latency_us
    }

    /// Enqueues an operation of `cost` units; call [`pump`](Self::pump).
    // dasr-lint: no-alloc
    pub fn submit(&mut self, token: IoToken, cost: f64, now: SimTime) {
        self.q.submit(token, cost.max(1.0), now.as_micros());
    }

    /// Enqueues a background operation (writeback): consumes credit but
    /// never starves foreground I/O.
    // dasr-lint: no-alloc
    pub fn submit_low(&mut self, token: IoToken, cost: f64, now: SimTime) {
        self.q.submit_low(token, cost.max(1.0), now.as_micros());
    }

    /// Dispatches admissible operations into `out` (cleared first; the
    /// caller owns and reuses the buffer, so pumping never allocates).
    /// Completion is at `start + base_latency`; the caller schedules those
    /// events, plus the optional ready callback.
    // dasr-lint: no-alloc
    pub fn pump(&mut self, now: SimTime, out: &mut Vec<Dispatched<IoToken>>) -> Option<u64> {
        self.q.pump(now.as_micros(), out)
    }

    /// Handles a ready callback, dispatching into `out` (cleared first).
    // dasr-lint: no-alloc
    pub fn on_ready(
        &mut self,
        at_us: u64,
        now: SimTime,
        out: &mut Vec<Dispatched<IoToken>>,
    ) -> Option<u64> {
        self.q.on_ready(at_us, now.as_micros(), out)
    }

    /// Operations queued behind the governor.
    pub fn queued(&self) -> usize {
        self.q.queued()
    }

    /// Throttle backlog, µs.
    pub fn backlog_us(&self, now: SimTime) -> f64 {
        self.q.backlog_us(now.as_micros())
    }

    /// Drains the consumed-units meter.
    pub fn take_consumed(&mut self) -> f64 {
        self.q.take_consumed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(d: &mut IoDevice, mut ready: Option<u64>) -> Vec<Dispatched<IoToken>> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(at) = ready {
            ready = d.on_ready(at, SimTime::from_micros(at), &mut buf);
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn isolated_io_dispatches_immediately_on_any_container() {
        for iops in [100.0, 6_400.0] {
            let mut d = IoDevice::disk(iops);
            d.submit(IoToken::Request(1), 1.0, SimTime::from_secs(5));
            let mut batch = Vec::new();
            let ready = d.pump(SimTime::from_secs(5), &mut batch);
            assert_eq!(batch.len(), 1, "iops {iops}");
            assert_eq!(batch[0].queued_wait_us, 0);
            assert!(ready.is_none());
        }
    }

    #[test]
    fn sustained_rate_above_allocation_throttles() {
        let mut d = IoDevice::disk(100.0); // burst allowance = 25 ops
        for i in 0..200u64 {
            d.submit(IoToken::Request(i), 1.0, SimTime::ZERO);
        }
        let mut first = Vec::new();
        let ready = d.pump(SimTime::ZERO, &mut first);
        assert!(
            first.len() <= 30,
            "only the burst dispatches: {}",
            first.len()
        );
        let rest = drain(&mut d, ready);
        assert_eq!(first.len() + rest.len(), 200);
        // Tail ops dispatch seconds later (paced at 10 ms each).
        assert!(rest.last().unwrap().start_us > 1_500_000);
    }

    #[test]
    fn bigger_allocation_throttles_less() {
        let last = |iops: f64| -> u64 {
            let mut d = IoDevice::disk(iops);
            for i in 0..500u64 {
                d.submit(IoToken::Request(i), 1.0, SimTime::ZERO);
            }
            let ready = d.pump(SimTime::ZERO, &mut Vec::new());
            drain(&mut d, ready).last().map_or(0, |x| x.start_us)
        };
        assert!(last(6_400.0) < last(100.0) / 10);
    }

    #[test]
    fn log_cost_is_bytes() {
        let mut log = IoDevice::log(5.0); // 5 bytes/µs; allowance 1.25 MB
        log.submit(IoToken::Request(1), 512.0, SimTime::ZERO);
        let mut batch = Vec::new();
        let _ = log.pump(SimTime::ZERO, &mut batch);
        assert_eq!(batch[0].queued_wait_us, 0);
        // A 10 MB append blows through the burst allowance: the following
        // small append queues for seconds.
        log.submit(IoToken::Request(2), 10_000_000.0, SimTime::ZERO);
        log.submit(IoToken::Request(3), 512.0, SimTime::ZERO);
        let ready = log.pump(SimTime::ZERO, &mut batch);
        assert_eq!(batch.len(), 1, "big append rides the remaining burst");
        let rest = drain(&mut log, ready);
        assert!(rest[0].start_us > 1_000_000, "{}", rest[0].start_us);
    }

    #[test]
    fn resize_rerates_backlog() {
        let mut d = IoDevice::disk(100.0);
        for i in 0..200u64 {
            d.submit(IoToken::Request(i), 1.0, SimTime::ZERO);
        }
        let ready = d.pump(SimTime::ZERO, &mut Vec::new());
        d.set_rate_per_us(6_400.0 / 1_000_000.0);
        let rest = drain(&mut d, ready);
        assert!(
            rest.last().unwrap().start_us < 100_000,
            "re-rated backlog drains fast: {}",
            rest.last().unwrap().start_us
        );
    }

    #[test]
    fn metering() {
        let mut d = IoDevice::disk(1_000.0);
        d.submit(IoToken::Background, 1.0, SimTime::ZERO);
        d.submit(IoToken::Background, 1.0, SimTime::ZERO);
        let _ = d.pump(SimTime::ZERO, &mut Vec::new());
        assert_eq!(d.take_consumed(), 2.0);
        assert_eq!(d.take_consumed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "iops must be positive")]
    fn zero_iops_panics() {
        let _ = IoDevice::disk(0.0);
    }
}
