//! Engine configuration.

/// Static engine parameters (independent of the container size).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Page size in KB (memory MB → pool pages conversion). SQL-family
    /// engines use 8 KB pages.
    pub page_kb: u32,
    /// Fraction of container memory reserved for the buffer pool; the rest
    /// backs plan caches and fixed overheads.
    pub buffer_pool_fraction: f64,
    /// Fraction of container memory available as query memory grants.
    pub grant_pool_fraction: f64,
    /// Maximum outstanding requests before new arrivals are rejected
    /// (connection/admission limit, like a gateway's connection pool; also
    /// bounds how far latencies can balloon under overload before clients
    /// see rejections instead).
    pub max_outstanding: usize,
    /// Dirty evicted pages coalesced into one background write (the
    /// checkpointer writes multi-page extents).
    pub writeback_coalesce: u32,
    /// Fraction of current pool capacity evicted per balloon step (§4.3:
    /// memory is reduced *slowly*, so the monitoring loop can abort long
    /// before the working set is gone).
    pub balloon_step_fraction: f64,
    /// Minimum pages evicted per balloon step.
    pub balloon_step_min_pages: usize,
    /// Microseconds between balloon steps.
    pub balloon_step_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            page_kb: 8,
            buffer_pool_fraction: 0.85,
            grant_pool_fraction: 0.25,
            max_outstanding: 400,
            writeback_coalesce: 8,
            balloon_step_fraction: 0.005, // ~0.5%/s: a rung takes minutes
            balloon_step_min_pages: 256,
            balloon_step_us: 1_000_000,
        }
    }
}

impl EngineConfig {
    /// Buffer-pool capacity in pages for a container with `memory_mb`.
    pub fn pool_pages(&self, memory_mb: f64) -> usize {
        let pages_per_mb = 1_024.0 / self.page_kb as f64;
        (memory_mb * self.buffer_pool_fraction * pages_per_mb).floor() as usize
    }

    /// Memory-grant pool in MB for a container with `memory_mb`.
    pub fn grant_mb(&self, memory_mb: f64) -> u64 {
        (memory_mb * self.grant_pool_fraction).floor() as u64
    }

    /// MB of memory represented by `pages` buffer-pool pages (inverse of
    /// [`pool_pages`](Self::pool_pages), ignoring the non-pool overhead).
    pub fn pages_to_mb(&self, pages: usize) -> f64 {
        pages as f64 * self.page_kb as f64 / 1_024.0 / self.buffer_pool_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizing() {
        let cfg = EngineConfig::default();
        // 1024 MB * 0.85 * 128 pages/MB = 111,411 pages.
        assert_eq!(cfg.pool_pages(1_024.0), 111_411);
        assert_eq!(cfg.grant_mb(1_024.0), 256);
    }

    #[test]
    fn pages_mb_roundtrip() {
        let cfg = EngineConfig::default();
        let pages = cfg.pool_pages(4_096.0);
        let mb = cfg.pages_to_mb(pages);
        assert!((mb - 4_096.0).abs() < 1.0, "roundtrip within 1 MB: {mb}");
    }

    #[test]
    fn default_is_sane() {
        let cfg = EngineConfig::default();
        assert!(cfg.buffer_pool_fraction > 0.0 && cfg.buffer_pool_fraction <= 1.0);
        assert!(cfg.grant_pool_fraction > 0.0 && cfg.grant_pool_fraction <= 1.0);
        assert!(cfg.max_outstanding > 0);
    }
}
