//! Simulated time: microsecond-resolution monotonic clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
///
/// `u64` microseconds overflow after ~584 000 years of simulated time, so
/// arithmetic uses plain addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Constructs from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// Value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in (fractional) minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimTime::from_mins(1).as_secs_f64(), 60.0);
        assert_eq!(SimTime::from_mins(2).as_mins_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + 500;
        assert_eq!(t.as_micros(), 1_000_500);
        assert_eq!(t - SimTime::from_secs(1), 500);
        assert_eq!(SimTime::ZERO - t, 0, "saturating");
        assert_eq!(t.since(SimTime::ZERO), 1_000_500);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
