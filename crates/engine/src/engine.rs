//! The database-server engine: event loop, request lifecycle, telemetry.
//!
//! [`Engine`] ties the devices together. The driver (the closed-loop runner
//! in `dasr-core`) injects request arrivals with [`Engine::submit_at`],
//! advances simulated time with [`Engine::run_until`], drains per-interval
//! telemetry with [`Engine::end_interval`], and applies container resizes
//! with [`Engine::apply_resources`] — an online operation, exactly as in the
//! paper (§6).
//!
//! ## Fast path
//!
//! The engine is the inner loop of every fleet experiment (1k tenants ×
//! 1440 intervals), so its core data structures are chosen for throughput:
//!
//! - request state lives in a [`GenSlab`] (one array access + generation
//!   check per event) instead of `HashMap<ReqId, _>` tables;
//! - the event queue is an [`EventWheel`]
//!   (µs-granularity buckets + overflow heap) instead of a `BinaryHeap`,
//!   preserving the `(time, seq)` total order exactly;
//! - every dispatch path (CPU/disk/log pumps, lock-waiter resumption,
//!   buffer-pool eviction, latency collection) writes into engine-owned
//!   scratch buffers, so steady-state operation never allocates.
//!
//! Telemetry is **bit-identical** to the pre-fast-path implementation,
//! which is preserved as [`OracleEngine`](crate::oracle::OracleEngine) and
//! enforced by the property tests in `tests/engine_equivalence.rs`.

use crate::bufferpool::{Access, BufferPool};
use crate::config::EngineConfig;
use crate::cpu::{CpuJob, CpuScheduler};
use crate::device::{IoDevice, IoToken};
use crate::governor::Dispatched;
use crate::grants::{GrantPool, GrantedMemory};
use crate::locks::{GrantedWaiter, LockTable};
use crate::meter;
use crate::request::{CompletedRequest, Op, ReqId, RequestSpec};
use crate::slab::GenSlab;
use crate::time::SimTime;
use crate::waits::{WaitClass, WaitStats};
use crate::wheel::EventWheel;
use dasr_containers::ResourceVector;
use std::collections::VecDeque;

/// Events in the simulation queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A request arrives (spec parked in the slab, inactive).
    Arrival(ReqId),
    /// A CPU burst finishes.
    CpuDone {
        req: ReqId,
        work_us: u64,
        signal_wait_us: u64,
    },
    /// CPU governor credit becomes available.
    CpuReady(u64),
    /// A request's disk read completes.
    DiskReadDone { req: ReqId, wait_us: u64 },
    /// Disk governor credit becomes available.
    DiskReady(u64),
    /// A request's log append completes.
    LogDone { req: ReqId, wait_us: u64 },
    /// Log governor credit becomes available.
    LogReady(u64),
    /// Think time elapses.
    Wake { req: ReqId, think_us: u64 },
    /// One ballooning decrement.
    BalloonStep,
}

/// Per-request execution state.
#[derive(Debug)]
struct ReqState {
    spec: RequestSpec,
    op: usize,
    arrived: SimTime,
    cpu_service_us: u64,
    waits: WaitStats,
    /// Page being fetched from disk (page id, dirtying access).
    pending_page: Option<(u64, bool)>,
    /// Memory grant held (MB), released at completion.
    granted_mb: u32,
    /// False between `submit_at` and admission at arrival time.
    active: bool,
}

/// Telemetry for one billing/monitoring interval, drained by
/// [`Engine::end_interval`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalStats {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// CPU utilization as % of the *allocated* cores.
    pub cpu_util_pct: f64,
    /// Buffer-pool utilization as % of allocated pool pages.
    pub mem_util_pct: f64,
    /// Data-disk utilization as % of the allocated IOPS.
    pub disk_util_pct: f64,
    /// Log-device utilization as % of the allocated bandwidth.
    pub log_util_pct: f64,
    /// Buffer-pool pages in use, expressed in MB of container memory.
    pub mem_used_mb: f64,
    /// Buffer-pool capacity in MB of container memory.
    pub mem_capacity_mb: f64,
    /// Wait time accumulated during the interval, per class.
    pub waits: WaitStats,
    /// Latencies (ms) of requests completed during the interval.
    pub latencies_ms: Vec<f64>,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Disk read operations performed.
    pub disk_reads: u64,
    /// Disk write operations performed (background writebacks).
    pub disk_writes: u64,
    /// Requests still in flight at interval end.
    pub outstanding: usize,
}

impl Default for IntervalStats {
    fn default() -> Self {
        Self {
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            cpu_util_pct: 0.0,
            mem_util_pct: 0.0,
            disk_util_pct: 0.0,
            log_util_pct: 0.0,
            mem_used_mb: 0.0,
            mem_capacity_mb: 0.0,
            waits: WaitStats::new(),
            latencies_ms: Vec::new(),
            arrivals: 0,
            completed: 0,
            rejected: 0,
            disk_reads: 0,
            disk_writes: 0,
            outstanding: 0,
        }
    }
}

impl IntervalStats {
    /// Interval length in microseconds.
    pub fn interval_us(&self) -> u64 {
        self.end - self.start
    }

    /// Average disk reads per second over the interval.
    pub fn disk_reads_per_sec(&self) -> f64 {
        meter::ops_per_sec(self.disk_reads, self.interval_us())
    }
}

/// The simulated database server.
#[derive(Debug)]
pub struct Engine {
    cfg: EngineConfig,
    clock: SimTime,
    seq: u64,
    events: EventWheel<Ev>,
    /// All known requests (pending and running); the slab key is the
    /// `ReqId`. `running` counts admitted (active) entries.
    requests: GenSlab<ReqState>,
    running: usize,
    runnable: VecDeque<ReqId>,

    cpu: CpuScheduler,
    disk: IoDevice,
    log: IoDevice,
    pool: BufferPool,
    locks: LockTable,
    grants: GrantPool,
    resources: ResourceVector,

    /// Ballooning target in pool pages, when active (§4.3).
    balloon_target: Option<usize>,

    waits: WaitStats,
    waits_at_interval_start: WaitStats,
    /// Latencies (ms) of requests completed this interval; swapped out by
    /// [`end_interval_into`](Self::end_interval_into).
    completed_latencies_ms: Vec<f64>,
    interval_start: SimTime,
    arrivals: u64,
    rejected: u64,
    disk_reads: u64,
    disk_writes: u64,

    // Reused scratch buffers: dispatch paths write into these instead of
    // returning fresh `Vec`s, so the event loop is allocation-free in
    // steady state. Each is taken (`std::mem::take`) for the duration of
    // the call that iterates it, then restored with its capacity intact.
    cpu_scratch: Vec<Dispatched<CpuJob>>,
    disk_scratch: Vec<Dispatched<IoToken>>,
    log_scratch: Vec<Dispatched<IoToken>>,
    lock_scratch: Vec<GrantedWaiter>,
    grant_scratch: Vec<GrantedMemory>,
    evict_scratch: Vec<u64>,
}

impl Engine {
    /// Creates an engine inside a container granting `resources`.
    pub fn new(cfg: EngineConfig, resources: ResourceVector) -> Self {
        assert!(resources.cpu_cores > 0.0, "container needs CPU");
        assert!(resources.disk_iops > 0.0, "container needs disk IOPS");
        assert!(resources.log_mbps > 0.0, "container needs log bandwidth");
        Self {
            cpu: CpuScheduler::new(resources.cpu_cores),
            disk: IoDevice::disk(resources.disk_iops),
            log: IoDevice::log(resources.log_mbps),
            pool: BufferPool::new(cfg.pool_pages(resources.memory_mb)),
            locks: LockTable::new(),
            grants: GrantPool::new(cfg.grant_mb(resources.memory_mb)),
            resources,
            cfg,
            clock: SimTime::ZERO,
            seq: 0,
            events: EventWheel::new(),
            requests: GenSlab::new(),
            running: 0,
            runnable: VecDeque::new(),
            balloon_target: None,
            waits: WaitStats::new(),
            waits_at_interval_start: WaitStats::new(),
            completed_latencies_ms: Vec::new(),
            interval_start: SimTime::ZERO,
            arrivals: 0,
            rejected: 0,
            disk_reads: 0,
            disk_writes: 0,
            cpu_scratch: Vec::new(),
            disk_scratch: Vec::new(),
            log_scratch: Vec::new(),
            lock_scratch: Vec::new(),
            grant_scratch: Vec::new(),
            evict_scratch: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Current container allocation.
    pub fn resources(&self) -> &ResourceVector {
        &self.resources
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.running
    }

    /// Buffer-pool pages in use, as MB of container memory.
    pub fn pool_used_mb(&self) -> f64 {
        self.cfg.pages_to_mb(self.pool.used())
    }

    /// Buffer-pool capacity, as MB of container memory.
    pub fn pool_capacity_mb(&self) -> f64 {
        self.cfg.pages_to_mb(self.pool.capacity())
    }

    /// Pre-fills the buffer pool with pages `0..n` (clean), clamped to the
    /// pool capacity. The workloads place their hot sets at the low page
    /// ids, so this simulates attaching the auto-scaler to an
    /// already-running, warmed-up database — the paper's setting, where
    /// experiments resize a live tenant rather than cold-start one.
    pub fn prewarm(&mut self, pages: u64) {
        let n = (pages as usize).min(self.pool.capacity());
        let mut scratch = std::mem::take(&mut self.evict_scratch);
        for page in 0..n as u64 {
            self.pool.insert(page, false, &mut scratch);
        }
        self.evict_scratch = scratch;
    }

    /// Schedules `spec` to arrive at `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    // dasr-lint: no-alloc
    pub fn submit_at(&mut self, at: SimTime, spec: RequestSpec) {
        assert!(at >= self.clock, "arrival scheduled in the past");
        let id = self.requests.insert(ReqState {
            spec,
            op: 0,
            arrived: SimTime::ZERO,
            cpu_service_us: 0,
            waits: WaitStats::new(),
            pending_page: None,
            granted_mb: 0,
            active: false,
        });
        self.push_event(at, Ev::Arrival(id));
    }

    /// Processes every event with timestamp ≤ `t`, then advances the clock
    /// to `t`.
    // dasr-lint: no-alloc
    // dasr-lint: entry(G3)
    pub fn run_until(&mut self, t: SimTime) {
        let horizon = t.as_micros();
        while let Some((et, _, ev)) = self.events.pop_due(horizon) {
            let et = SimTime::from_micros(et);
            debug_assert!(et >= self.clock, "time went backwards");
            self.clock = et;
            self.dispatch(ev);
            self.drain_runnable();
        }
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Applies a container resize — an online operation: CPU and I/O
    /// governors re-rate their queued backlogs immediately; the buffer pool
    /// evicts (or gains headroom) immediately unless a balloon is active
    /// (the balloon owns capacity while probing).
    // dasr-lint: no-alloc
    pub fn apply_resources(&mut self, resources: ResourceVector) {
        assert!(resources.cpu_cores > 0.0, "container needs CPU");
        assert!(resources.disk_iops > 0.0, "container needs disk IOPS");
        assert!(resources.log_mbps > 0.0, "container needs log bandwidth");
        self.resources = resources;
        self.cpu.resize(resources.cpu_cores);
        self.disk.set_rate_per_us(resources.disk_iops / 1_000_000.0);
        self.log.set_rate_per_us(resources.log_mbps);
        self.grants.resize(self.cfg.grant_mb(resources.memory_mb));
        if self.balloon_target.is_none() {
            let mut dirty = std::mem::take(&mut self.evict_scratch);
            self.pool
                .set_capacity(self.cfg.pool_pages(resources.memory_mb), &mut dirty);
            let n = dirty.len();
            self.evict_scratch = dirty;
            self.writeback(n);
        }
        // Increased rates may admit queued work right away.
        self.pump_cpu();
        self.pump_disk();
        self.pump_log();
    }

    /// Starts ballooning toward `target_mb` of container memory (§4.3): the
    /// pool shrinks by `balloon_step_pages` every `balloon_step_us` until it
    /// reaches the target or [`abort_balloon`](Self::abort_balloon) is
    /// called.
    pub fn start_balloon(&mut self, target_mb: f64) {
        let target_pages = self.cfg.pool_pages(target_mb);
        self.balloon_target = Some(target_pages);
        let at = self.clock + self.cfg.balloon_step_us;
        self.push_event(at, Ev::BalloonStep);
    }

    /// Aborts ballooning and restores the pool to the container's full
    /// allocation.
    pub fn abort_balloon(&mut self) {
        if self.balloon_target.take().is_some() {
            let mut dirty = std::mem::take(&mut self.evict_scratch);
            self.pool
                .set_capacity(self.cfg.pool_pages(self.resources.memory_mb), &mut dirty);
            let n = dirty.len();
            self.evict_scratch = dirty;
            self.writeback(n);
        }
    }

    /// True while a balloon is deflating the pool.
    pub fn balloon_active(&self) -> bool {
        self.balloon_target.is_some()
    }

    /// True when the balloon reached its target capacity.
    pub fn balloon_reached_target(&self) -> bool {
        self.balloon_target
            .is_some_and(|t| self.pool.capacity() <= t)
    }

    /// Ends ballooning *without* restoring capacity (the controller decided
    /// memory demand is low and will resize the container down).
    pub fn commit_balloon(&mut self) {
        self.balloon_target = None;
    }

    /// Drains telemetry for the interval since the previous call (or since
    /// simulation start).
    ///
    /// Allocates a fresh [`IntervalStats`]; hot callers should reuse one
    /// via [`end_interval_into`](Self::end_interval_into).
    pub fn end_interval(&mut self) -> IntervalStats {
        let mut out = IntervalStats::default();
        self.end_interval_into(&mut out);
        out
    }

    /// Drains telemetry for the interval since the previous call into
    /// `out`, reusing its `latencies_ms` allocation: the engine's internal
    /// latency buffer and `out.latencies_ms` are swapped (ping-pong), so a
    /// caller that reuses the same `IntervalStats` every interval incurs
    /// no allocation in steady state.
    // dasr-lint: no-alloc
    pub fn end_interval_into(&mut self, out: &mut IntervalStats) {
        let start = self.interval_start;
        let end = self.clock;
        let interval_us = (end - start).max(1);
        let waits_delta = self.waits.delta_since(&self.waits_at_interval_start);
        self.waits_at_interval_start = self.waits;
        self.interval_start = end;

        out.latencies_ms.clear();
        std::mem::swap(&mut out.latencies_ms, &mut self.completed_latencies_ms);
        out.start = start;
        out.end = end;
        out.cpu_util_pct = (self.cpu.take_work_done_us() / (self.cpu.cores() * interval_us as f64)
            * 100.0)
            .clamp(0.0, 100.0);
        out.disk_util_pct =
            (self.disk.take_consumed() / (self.disk.rate_per_us() * interval_us as f64) * 100.0)
                .clamp(0.0, 100.0);
        out.log_util_pct =
            (self.log.take_consumed() / (self.log.rate_per_us() * interval_us as f64) * 100.0)
                .clamp(0.0, 100.0);
        out.mem_util_pct = meter::memory_utilization_pct(self.pool.used(), self.pool.capacity());
        out.mem_used_mb = self.pool_used_mb();
        out.mem_capacity_mb = self.pool_capacity_mb();
        out.waits = waits_delta;
        out.completed = out.latencies_ms.len() as u64;
        out.arrivals = std::mem::take(&mut self.arrivals);
        out.rejected = std::mem::take(&mut self.rejected);
        out.disk_reads = std::mem::take(&mut self.disk_reads);
        out.disk_writes = std::mem::take(&mut self.disk_writes);
        out.outstanding = self.running;
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    // dasr-lint: no-alloc
    fn push_event(&mut self, at: SimTime, ev: Ev) {
        self.seq += 1;
        self.events.push(at.as_micros(), self.seq, ev);
    }

    /// Schedules completions for dispatched CPU bursts plus the optional
    /// governor ready callback.
    // dasr-lint: no-alloc
    fn flush_cpu(&mut self, dispatched: &[Dispatched<CpuJob>], ready: Option<u64>) {
        for d in dispatched {
            self.push_event(
                SimTime::from_micros(d.start_us) + d.payload.work_us.max(1),
                Ev::CpuDone {
                    req: d.payload.req,
                    work_us: d.payload.work_us,
                    signal_wait_us: d.queued_wait_us,
                },
            );
        }
        if let Some(at) = ready {
            self.push_event(SimTime::from_micros(at), Ev::CpuReady(at));
        }
    }

    /// Dispatches admissible CPU bursts and schedules their completions.
    // dasr-lint: no-alloc
    fn pump_cpu(&mut self) {
        let mut buf = std::mem::take(&mut self.cpu_scratch);
        let ready = self.cpu.pump(self.clock, &mut buf);
        self.flush_cpu(&buf, ready);
        self.cpu_scratch = buf;
    }

    /// Schedules completions for dispatched disk operations (reads complete
    /// after the base latency; background writebacks complete immediately
    /// for accounting) plus the ready callback.
    // dasr-lint: no-alloc
    fn flush_disk(&mut self, dispatched: &[Dispatched<IoToken>], ready: Option<u64>) {
        let base = self.disk.base_latency_us();
        for d in dispatched {
            match d.payload {
                IoToken::Request(req) => {
                    self.push_event(
                        SimTime::from_micros(d.start_us) + base,
                        Ev::DiskReadDone {
                            req,
                            wait_us: d.queued_wait_us + base,
                        },
                    );
                }
                IoToken::Background => {
                    self.disk_writes += 1;
                }
            }
        }
        if let Some(at) = ready {
            self.push_event(SimTime::from_micros(at), Ev::DiskReady(at));
        }
    }

    /// Dispatches admissible disk I/Os and schedules their completions.
    // dasr-lint: no-alloc
    fn pump_disk(&mut self) {
        let mut buf = std::mem::take(&mut self.disk_scratch);
        let ready = self.disk.pump(self.clock, &mut buf);
        self.flush_disk(&buf, ready);
        self.disk_scratch = buf;
    }

    /// Schedules completions for dispatched log appends plus the ready
    /// callback.
    // dasr-lint: no-alloc
    fn flush_log(&mut self, dispatched: &[Dispatched<IoToken>], ready: Option<u64>) {
        let base = self.log.base_latency_us();
        for d in dispatched {
            if let IoToken::Request(req) = d.payload {
                self.push_event(
                    SimTime::from_micros(d.start_us) + base,
                    Ev::LogDone {
                        req,
                        wait_us: d.queued_wait_us + base,
                    },
                );
            }
        }
        if let Some(at) = ready {
            self.push_event(SimTime::from_micros(at), Ev::LogReady(at));
        }
    }

    /// Dispatches admissible log appends and schedules their completions.
    // dasr-lint: no-alloc
    fn pump_log(&mut self) {
        let mut buf = std::mem::take(&mut self.log_scratch);
        let ready = self.log.pump(self.clock, &mut buf);
        self.flush_log(&buf, ready);
        self.log_scratch = buf;
    }

    // dasr-lint: no-alloc
    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(id) => self.on_arrival(id),
            Ev::CpuDone {
                req,
                work_us,
                signal_wait_us,
            } => {
                if let Some(state) = self.requests.get_mut(req) {
                    state.cpu_service_us += work_us;
                    if signal_wait_us > 0 {
                        state.waits.add(WaitClass::Cpu, signal_wait_us);
                        self.waits.add(WaitClass::Cpu, signal_wait_us);
                    }
                    state.op += 1;
                    self.runnable.push_back(req);
                }
            }
            Ev::CpuReady(at) => {
                let mut buf = std::mem::take(&mut self.cpu_scratch);
                let ready = self.cpu.on_ready(at, self.clock, &mut buf);
                self.flush_cpu(&buf, ready);
                self.cpu_scratch = buf;
            }
            Ev::DiskReadDone { req, wait_us } => {
                self.disk_reads += 1;
                let mut dirty_evicted = 0;
                if let Some(state) = self.requests.get_mut(req) {
                    state.waits.add(WaitClass::DiskIo, wait_us);
                    self.waits.add(WaitClass::DiskIo, wait_us);
                    let (page, write) = state
                        .pending_page
                        .take()
                        // dasr-lint: allow(G3) reason="event-schedule invariant: a disk completion is only queued with pending_page set; a violation is a simulator bug that must abort the run"
                        .expect("disk completion without pending page");
                    self.pool.insert(page, write, &mut self.evict_scratch);
                    dirty_evicted = self.evict_scratch.len();
                    let state = self.requests.get_mut(req).expect("request vanished");
                    state.op += 1;
                    self.runnable.push_back(req);
                }
                self.writeback(dirty_evicted);
            }
            Ev::DiskReady(at) => {
                let mut buf = std::mem::take(&mut self.disk_scratch);
                let ready = self.disk.on_ready(at, self.clock, &mut buf);
                self.flush_disk(&buf, ready);
                self.disk_scratch = buf;
            }
            Ev::LogDone { req, wait_us } => {
                if let Some(state) = self.requests.get_mut(req) {
                    state.waits.add(WaitClass::LogIo, wait_us);
                    self.waits.add(WaitClass::LogIo, wait_us);
                    state.op += 1;
                    self.runnable.push_back(req);
                }
            }
            Ev::LogReady(at) => {
                let mut buf = std::mem::take(&mut self.log_scratch);
                let ready = self.log.on_ready(at, self.clock, &mut buf);
                self.flush_log(&buf, ready);
                self.log_scratch = buf;
            }
            Ev::Wake { req, think_us } => {
                if let Some(state) = self.requests.get_mut(req) {
                    state.waits.add(WaitClass::Other, think_us);
                    self.waits.add(WaitClass::Other, think_us);
                    state.op += 1;
                    self.runnable.push_back(req);
                }
            }
            Ev::BalloonStep => self.on_balloon_step(),
        }
    }

    // dasr-lint: no-alloc
    fn on_arrival(&mut self, id: ReqId) {
        if self.running >= self.cfg.max_outstanding {
            self.rejected += 1;
            // dasr-lint: allow(G3) reason="admission invariant: every arrival event carries a slab key inserted at submit; a stale key must abort, not be masked"
            self.requests.remove(id).expect("arrival without spec");
            return;
        }
        self.arrivals += 1;
        let now = self.clock;
        let state = self.requests.get_mut(id).expect("arrival without spec");
        state.active = true;
        state.arrived = now;
        self.running += 1;
        self.runnable.push_back(id);
    }

    // dasr-lint: no-alloc
    fn on_balloon_step(&mut self) {
        let Some(target) = self.balloon_target else {
            return; // balloon aborted; stale event
        };
        let cap = self.pool.capacity();
        if cap > target {
            let step = ((cap as f64 * self.cfg.balloon_step_fraction) as usize)
                .max(self.cfg.balloon_step_min_pages);
            let new_cap = cap.saturating_sub(step).max(target);
            let mut dirty = std::mem::take(&mut self.evict_scratch);
            self.pool.set_capacity(new_cap, &mut dirty);
            let n = dirty.len();
            self.evict_scratch = dirty;
            self.writeback(n);
            if new_cap > target {
                let at = self.clock + self.cfg.balloon_step_us;
                self.push_event(at, Ev::BalloonStep);
            }
        }
    }

    /// Submits background writebacks for `n` dirty evicted pages. Dirty
    /// pages are coalesced into extent-sized writes and run at low priority
    /// so checkpoint storms never starve foreground I/O; nobody waits on
    /// them.
    // dasr-lint: no-alloc
    fn writeback(&mut self, n: usize) {
        let writes = n.div_ceil(self.cfg.writeback_coalesce.max(1) as usize);
        for _ in 0..writes {
            self.disk.submit_low(IoToken::Background, 1.0, self.clock);
        }
        if writes > 0 {
            self.pump_disk();
        }
    }

    // dasr-lint: no-alloc
    fn drain_runnable(&mut self) {
        while let Some(req) = self.runnable.pop_front() {
            self.advance(req);
        }
    }

    /// Advances a request's state machine until it blocks or completes.
    // dasr-lint: no-alloc
    fn advance(&mut self, req: ReqId) {
        loop {
            let Some(state) = self.requests.get_mut(req) else {
                return;
            };
            let Some(&op) = state.spec.ops.get(state.op) else {
                self.complete_request(req);
                return;
            };
            match op {
                Op::CpuBurst { us } => {
                    self.cpu.submit(req, us, self.clock);
                    self.pump_cpu();
                    return;
                }
                Op::PageAccess { page, write } => match self.pool.access(page, write) {
                    Access::Hit => {
                        state.op += 1;
                    }
                    Access::Miss => {
                        state.pending_page = Some((page, write));
                        self.disk.submit(IoToken::Request(req), 1.0, self.clock);
                        self.pump_disk();
                        return;
                    }
                },
                Op::LogWrite { bytes } => {
                    self.log
                        .submit(IoToken::Request(req), f64::from(bytes), self.clock);
                    self.pump_log();
                    return;
                }
                Op::LockAcquire { lock, exclusive } => {
                    if self.locks.acquire(req, lock, exclusive, self.clock) {
                        state.op += 1;
                    } else {
                        return; // blocked; wait charged on grant
                    }
                }
                Op::LockRelease { lock } => {
                    state.op += 1;
                    self.locks
                        .release(req, lock, self.clock, &mut self.lock_scratch);
                    self.resume_lock_waiters();
                }
                Op::MemoryGrant { mb } => {
                    // One grant per request (as engines grant per
                    // statement): holding a grant makes further grant ops
                    // no-ops, which also rules out grant-vs-grant
                    // deadlocks.
                    if state.granted_mb > 0 {
                        state.op += 1;
                        continue;
                    }
                    let clamped = u64::from(mb).min(self.grants.pool_mb()).max(1) as u32;
                    if self.grants.acquire(req, mb, self.clock) {
                        state.granted_mb += clamped;
                        state.op += 1;
                    } else {
                        return; // blocked; wait charged on grant
                    }
                }
                Op::Think { us } => {
                    self.push_event(self.clock + us, Ev::Wake { req, think_us: us });
                    return;
                }
            }
        }
    }

    /// Resumes the waiters in `lock_scratch` (filled by the preceding
    /// `locks.release`/`release_all` call), charging their lock waits.
    // dasr-lint: no-alloc
    fn resume_lock_waiters(&mut self) {
        let buf = std::mem::take(&mut self.lock_scratch);
        for g in &buf {
            if let Some(state) = self.requests.get_mut(g.req) {
                state.waits.add(WaitClass::Lock, g.wait_us);
                self.waits.add(WaitClass::Lock, g.wait_us);
                state.op += 1;
                self.runnable.push_back(g.req);
            }
        }
        self.lock_scratch = buf;
    }

    // dasr-lint: no-alloc
    fn complete_request(&mut self, req: ReqId) {
        let state = self
            .requests
            .remove(req)
            // dasr-lint: allow(G3) reason="completion invariant: a request completes exactly once; a double-complete must abort the simulation"
            .expect("completing unknown request");
        self.running -= 1;
        // Strict 2PL: release everything still held.
        self.locks
            .release_all(req, self.clock, &mut self.lock_scratch);
        self.resume_lock_waiters();
        if state.granted_mb > 0 {
            self.grants
                .release(state.granted_mb, self.clock, &mut self.grant_scratch);
            let buf = std::mem::take(&mut self.grant_scratch);
            for w in &buf {
                if let Some(ws) = self.requests.get_mut(w.req) {
                    ws.waits.add(WaitClass::Memory, w.wait_us);
                    self.waits.add(WaitClass::Memory, w.wait_us);
                    ws.granted_mb += w.mb;
                    ws.op += 1;
                    self.runnable.push_back(w.req);
                }
            }
            self.grant_scratch = buf;
        }
        self.completed_latencies_ms.push(
            CompletedRequest {
                arrived: state.arrived,
                completed: self.clock,
                cpu_service_us: state.cpu_service_us,
                waits: state.waits,
            }
            .latency_ms(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DISK_BASE_LATENCY_US, LOG_BASE_LATENCY_US};
    use crate::request::RequestBuilder;

    fn small_container() -> ResourceVector {
        ResourceVector::new(1.0, 64.0, 100.0, 5.0)
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::default(), small_container())
    }

    #[test]
    fn pure_cpu_request_latency_equals_service() {
        let mut e = engine();
        e.submit_at(SimTime::ZERO, RequestBuilder::new().cpu(5_000).build());
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.completed, 1);
        assert_eq!(s.latencies_ms, vec![5.0]);
        assert_eq!(s.waits.total(), 0);
    }

    #[test]
    fn sustained_cpu_overload_accumulates_signal_wait() {
        let mut e = engine(); // 1 core, 50 ms allowance
        for _ in 0..5 {
            e.submit_at(SimTime::ZERO, RequestBuilder::new().cpu(100_000).build());
        }
        e.run_until(SimTime::from_secs(2));
        let s = e.end_interval();
        assert_eq!(s.completed, 5);
        // vt: -50k → dispatch at 0 (vt 50k), then ready at 50k, 150k, 250k,
        // 350k → waits 0 + 50k + 150k + 250k + 350k.
        assert_eq!(s.waits[WaitClass::Cpu], 800_000);
        let max_lat = s.latencies_ms.iter().copied().fold(0.0, f64::max);
        assert_eq!(max_lat, 450.0);
    }

    #[test]
    fn isolated_page_miss_costs_base_latency_then_hits_are_free() {
        let mut e = engine(); // 100 IOPS container
        e.submit_at(SimTime::ZERO, RequestBuilder::new().read(7).build());
        e.run_until(SimTime::from_secs(1));
        let s1 = e.end_interval();
        assert_eq!(s1.disk_reads, 1);
        assert_eq!(s1.waits[WaitClass::DiskIo], DISK_BASE_LATENCY_US);

        e.submit_at(e.now(), RequestBuilder::new().read(7).build());
        e.run_until(e.now() + 1_000_000);
        let s2 = e.end_interval();
        assert_eq!(s2.disk_reads, 0, "cached");
        assert_eq!(s2.waits[WaitClass::DiskIo], 0);
    }

    #[test]
    fn disk_overload_throttles() {
        let mut e = engine(); // 100 IOPS, 25-op burst allowance
                              // Stay under the admission limit (400 outstanding).
        for i in 0..350u64 {
            e.submit_at(SimTime::ZERO, RequestBuilder::new().read(i).build());
        }
        e.run_until(SimTime::from_secs(30));
        let s = e.end_interval();
        assert_eq!(s.completed, 350);
        let max_lat = s.latencies_ms.iter().copied().fold(0.0, f64::max);
        assert!(max_lat > 2_500.0, "tail should wait seconds: {max_lat}");
    }

    #[test]
    fn log_write_waits_on_log_device() {
        let mut e = engine();
        e.submit_at(SimTime::ZERO, RequestBuilder::new().log(1_000).build());
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.waits[WaitClass::LogIo], LOG_BASE_LATENCY_US);
        assert!(s.log_util_pct > 0.0);
    }

    #[test]
    fn lock_contention_produces_lock_waits() {
        let mut e = engine();
        e.submit_at(
            SimTime::ZERO,
            RequestBuilder::new().lock(1, true).think(10_000).build(),
        );
        e.submit_at(
            SimTime::from_micros(1),
            RequestBuilder::new().lock(1, true).build(),
        );
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.completed, 2);
        assert_eq!(s.waits[WaitClass::Lock], 9_999);
    }

    #[test]
    fn memory_grant_contention() {
        let mut e = engine(); // 64 MB memory => grant pool 16 MB
        e.submit_at(
            SimTime::ZERO,
            RequestBuilder::new().grant(16).think(5_000).build(),
        );
        e.submit_at(
            SimTime::from_micros(1),
            RequestBuilder::new().grant(8).build(),
        );
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.completed, 2);
        assert_eq!(s.waits[WaitClass::Memory], 4_999);
    }

    #[test]
    fn wait_conservation_per_request() {
        // latency == cpu service + think + all waits, for a serial chain.
        let mut e = engine();
        let spec = RequestBuilder::new()
            .cpu(2_000)
            .read(1)
            .log(500)
            .think(1_000)
            .cpu(1_000)
            .build();
        e.submit_at(SimTime::ZERO, spec);
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.completed, 1);
        let latency_us = (s.latencies_ms[0] * 1_000.0).round() as u64;
        let expected_waits = DISK_BASE_LATENCY_US + LOG_BASE_LATENCY_US + 1_000;
        assert_eq!(latency_us, 3_000 + expected_waits);
        assert_eq!(s.waits.total(), expected_waits);
    }

    #[test]
    fn cpu_utilization_is_metered() {
        let mut e = engine(); // 1 core
        e.submit_at(SimTime::ZERO, RequestBuilder::new().cpu(300_000).build());
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert!((s.cpu_util_pct - 30.0).abs() < 1.0, "{}", s.cpu_util_pct);
    }

    #[test]
    fn disk_utilization_tracks_allocation_share() {
        let mut e = engine(); // 100 IOPS
                              // 50 cold reads in a 1 s interval = 50% of 100 IOPS.
        for i in 0..50u64 {
            e.submit_at(SimTime::ZERO, RequestBuilder::new().read(i).build());
        }
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert!((s.disk_util_pct - 50.0).abs() < 2.0, "{}", s.disk_util_pct);
    }

    #[test]
    fn resize_up_rerates_queued_backlog() {
        let load = |resize: bool| -> f64 {
            let mut e = engine(); // 1 core
            for i in 0..40u64 {
                e.submit_at(
                    SimTime::from_micros(i * 1_000),
                    RequestBuilder::new().cpu(100_000).build(),
                );
            }
            e.run_until(SimTime::from_millis(200));
            if resize {
                e.apply_resources(ResourceVector::new(8.0, 64.0, 100.0, 5.0));
            }
            e.run_until(SimTime::from_secs(20));
            let s = e.end_interval();
            assert_eq!(s.completed, 40);
            s.latencies_ms.iter().copied().fold(0.0, f64::max)
        };
        let without = load(false);
        let with = load(true);
        assert!(
            with < without / 2.0,
            "resize must cut tail latency: {with} vs {without}"
        );
    }

    #[test]
    fn admission_control_rejects_over_limit() {
        let cfg = EngineConfig {
            max_outstanding: 2,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg, small_container());
        for _ in 0..5 {
            e.submit_at(SimTime::ZERO, RequestBuilder::new().cpu(1_000_000).build());
        }
        e.run_until(SimTime::from_micros(1));
        let s = e.end_interval();
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.rejected, 3);
    }

    #[test]
    fn prewarm_fills_pool_and_avoids_cold_misses() {
        let mut e = Engine::new(
            EngineConfig::default(),
            ResourceVector::new(1.0, 256.0, 1_000.0, 5.0),
        );
        e.prewarm(1_000);
        assert!(e.pool_used_mb() > 0.0);
        e.submit_at(SimTime::ZERO, RequestBuilder::new().read(500).build());
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.disk_reads, 0, "prewarmed page must hit");
    }

    #[test]
    fn prewarm_clamps_to_capacity() {
        let mut e = engine(); // 64 MB => ~6963 pages
        e.prewarm(u64::MAX / 2);
        assert!(e.pool_used_mb() <= e.pool_capacity_mb() + 1.0);
    }

    #[test]
    fn ballooning_shrinks_gradually_and_abort_restores() {
        let cfg = EngineConfig {
            balloon_step_fraction: 0.001,
            balloon_step_min_pages: 10,
            balloon_step_us: 1_000,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg, small_container());
        let full = e.pool_capacity_mb();
        e.start_balloon(16.0);
        e.run_until(SimTime::from_millis(3));
        assert!(e.balloon_active());
        let shrunk = e.pool_capacity_mb();
        assert!(shrunk < full, "capacity should shrink: {shrunk} < {full}");
        assert!(!e.balloon_reached_target(), "gradual, not instant");
        e.abort_balloon();
        assert_eq!(e.pool_capacity_mb(), full);
        // A stale BalloonStep event must be harmless.
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.pool_capacity_mb(), full);
    }

    #[test]
    fn balloon_reaches_target_and_commit_keeps_it() {
        let cfg = EngineConfig {
            balloon_step_fraction: 0.9,
            balloon_step_min_pages: 10_000,
            balloon_step_us: 1_000,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(cfg, small_container());
        e.start_balloon(16.0);
        e.run_until(SimTime::from_secs(1));
        assert!(e.balloon_reached_target());
        let at_target = e.pool_capacity_mb();
        e.commit_balloon();
        assert!(!e.balloon_active());
        assert_eq!(e.pool_capacity_mb(), at_target);
    }

    #[test]
    fn dirty_evictions_write_back() {
        // Tiny pool: 1 MB memory => ~108 pages.
        let mut e = Engine::new(
            EngineConfig::default(),
            ResourceVector::new(1.0, 1.0, 1_000.0, 5.0),
        );
        for i in 0..300u64 {
            e.submit_at(e.now(), RequestBuilder::new().write(i).build());
            e.run_until(e.now() + 10_000);
        }
        e.run_until(e.now() + SimTime::from_secs(5).as_micros());
        let s = e.end_interval();
        assert!(s.disk_writes > 0, "dirty evictions must hit disk");
        assert_eq!(s.disk_reads, 300);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut e = engine();
            for i in 0..50u64 {
                e.submit_at(
                    SimTime::from_micros(i * 137),
                    RequestBuilder::new()
                        .lock((i % 3) as u32, i % 5 == 0)
                        .cpu(500 + i * 13)
                        .read(i % 17)
                        .log(200)
                        .build(),
                );
            }
            e.run_until(SimTime::from_secs(10));
            let s = e.end_interval();
            (s.completed, s.waits, s.latencies_ms.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn end_interval_into_reuses_the_latency_buffer() {
        let mut e = engine();
        let mut stats = IntervalStats::default();
        for round in 0..3u64 {
            e.submit_at(e.now(), RequestBuilder::new().cpu(1_000).build());
            e.run_until(e.now() + 1_000_000);
            e.end_interval_into(&mut stats);
            assert_eq!(stats.completed, 1, "round {round}");
            assert_eq!(stats.latencies_ms.len(), 1);
        }
        // The reused buffer must match the allocating wrapper.
        e.submit_at(e.now(), RequestBuilder::new().cpu(2_000).build());
        e.run_until(e.now() + 1_000_000);
        let fresh = e.end_interval();
        assert_eq!(fresh.completed, 1);
        assert_eq!(fresh.latencies_ms, vec![2.0]);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut e = engine();
        e.submit_at(
            SimTime::from_millis(5),
            RequestBuilder::new().cpu(1).build(),
        );
        e.run_until(SimTime::from_millis(10));
        assert_eq!(e.now(), SimTime::from_millis(10));
        e.run_until(SimTime::from_millis(1));
        assert_eq!(
            e.now(),
            SimTime::from_millis(10),
            "run_until in past is a no-op"
        );
    }

    #[test]
    #[should_panic(expected = "arrival scheduled in the past")]
    fn past_arrival_panics() {
        let mut e = engine();
        e.run_until(SimTime::from_secs(1));
        e.submit_at(SimTime::ZERO, RequestBuilder::new().build());
    }
}
