//! LRU buffer pool with ballooning support.
//!
//! The buffer pool caches data pages in the container's memory. Accesses hit
//! (free) or miss (one disk read); evicted dirty pages cost a background
//! disk write. Capacity follows the container's memory allocation, and
//! **ballooning** (§4.3) shrinks capacity gradually so the engine can
//! observe whether the working set still fits — the paper's mechanism for
//! safely probing low memory demand.
//!
//! Implementation: an intrusive doubly-linked LRU list over a slab, indexed
//! by `PageMap` — an open-addressed table with a Fibonacci (FxHash-style)
//! multiplicative hash and linear probing. Page ids are already
//! well-distributed integers, so the table beats `HashMap`'s SipHash by a
//! wide margin on the engine's hottest path (every page access hashes
//! once; every insert hashes twice). Eviction results are written into
//! caller-owned scratch buffers, so steady-state operation never allocates.

const NONE: u32 = u32::MAX;

/// Multiplier for Fibonacci hashing: `2^64 / φ`, rounded to odd. The high
/// bits of `page * FIB` are close to uniform for consecutive or strided
/// page ids, which is exactly the access pattern workloads generate.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Open-addressed `u64 → u32` index with linear probing and backward-shift
/// deletion. The sentinel for an empty slot lives in the *value* array
/// (`u32::MAX`, never a valid slab index), so any `u64` is a legal key.
///
/// Grows at 75% load; never shrinks (the pool's working set is bounded by
/// its largest capacity, and resizes reuse the high-water allocation).
#[derive(Debug)]
struct PageMap {
    keys: Vec<u64>,
    /// Slab index per slot, or `NONE` when the slot is empty.
    vals: Vec<u32>,
    mask: usize,
    /// `64 - log2(capacity)`: the hash keeps the *high* bits of the
    /// Fibonacci product, which are the well-mixed ones.
    shift: u32,
    len: usize,
    #[cfg(feature = "strict-invariants")]
    check_tick: u64,
}

/// Mutation count below which `strict-invariants` checks run every time
/// (small tables, unit tests); past it they sample every
/// [`CHECK_EVERY`]th mutation so the O(table) scan amortizes to ~O(1).
#[cfg(feature = "strict-invariants")]
const CHECK_ALWAYS: u64 = 64;
#[cfg(feature = "strict-invariants")]
const CHECK_EVERY: u64 = 1024;

impl PageMap {
    const MIN_CAP: usize = 16;

    fn new() -> Self {
        Self {
            keys: vec![0; Self::MIN_CAP],
            vals: vec![NONE; Self::MIN_CAP],
            mask: Self::MIN_CAP - 1,
            shift: 64 - Self::MIN_CAP.trailing_zeros(),
            len: 0,
            #[cfg(feature = "strict-invariants")]
            check_tick: 0,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    // dasr-lint: no-alloc
    fn get(&self, key: u64) -> Option<u32> {
        let mut i = self.home(key);
        loop {
            let v = self.vals[i];
            if v == NONE {
                return None;
            }
            if self.keys[i] == key {
                return Some(v);
            }
            i = (i + 1) & self.mask;
        }
    }

    // dasr-lint: no-alloc
    fn insert(&mut self, key: u64, val: u32) {
        debug_assert_ne!(val, NONE);
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            // dasr-lint: allow(G2) reason="amortized doubling: grow() reallocates only when load passes 3/4, O(1) amortized per insert"
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            if self.vals[i] == NONE {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                self.debug_check();
                return;
            }
            if self.keys[i] == key {
                self.vals[i] = val;
                self.debug_check();
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key` using backward-shift deletion: later entries in the
    /// probe chain slide back so lookups never need tombstones.
    // dasr-lint: no-alloc
    fn remove(&mut self, key: u64) {
        let mut i = self.home(key);
        loop {
            if self.vals[i] == NONE {
                return;
            }
            if self.keys[i] == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.len -= 1;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.vals[j] == NONE {
                self.vals[i] = NONE;
                self.debug_check();
                return;
            }
            let home = self.home(self.keys[j]);
            // Shift `j` back into the hole at `i` unless that would move it
            // before its home slot (cyclic distance comparison).
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.keys[i] = self.keys[j];
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![NONE; new_cap]);
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != NONE {
                self.insert(k, v);
            }
        }
    }

    /// Structural self-check (`strict-invariants` builds only): every live
    /// entry's probe chain from its home slot is unbroken, so `get` can
    /// always reach it — the invariant backward-shift deletion maintains.
    /// Sampled past the first [`CHECK_ALWAYS`] mutations to keep large
    /// simulations tractable.
    #[inline]
    fn debug_check(&mut self) {
        #[cfg(feature = "strict-invariants")]
        {
            self.check_tick += 1;
            if self.check_tick > CHECK_ALWAYS && !self.check_tick.is_multiple_of(CHECK_EVERY) {
                return;
            }
            let live = self.vals.iter().filter(|&&v| v != NONE).count();
            debug_assert_eq!(live, self.len, "occupied slot count must match len");
            for i in 0..self.vals.len() {
                if self.vals[i] == NONE {
                    continue;
                }
                let mut j = self.home(self.keys[i]);
                while j != i {
                    debug_assert_ne!(
                        self.vals[j], NONE,
                        "hole at slot {j} breaks the probe chain to slot {i}"
                    );
                    j = (j + 1) & self.mask;
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    page: u64,
    dirty: bool,
    prev: u32,
    next: u32,
}

/// Result of a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Page was cached; the access proceeds immediately.
    Hit,
    /// Page was not cached; the engine must read it from disk and then call
    /// [`BufferPool::insert`].
    Miss,
}

/// An LRU page cache.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    map: PageMap,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: PageMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
        }
    }

    /// Current capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently cached.
    pub fn used(&self) -> usize {
        self.map.len()
    }

    /// Accesses `page`; on a hit the page is touched (moved to MRU) and
    /// marked dirty if `write`. On a miss the caller performs the disk read
    /// and then calls [`insert`](Self::insert).
    // dasr-lint: no-alloc
    pub fn access(&mut self, page: u64, write: bool) -> Access {
        if let Some(idx) = self.map.get(page) {
            self.hits += 1;
            if write {
                // dasr-lint: allow(G3) reason="PageMap stores only live node indices; map and node array mutate together"
                self.nodes[idx as usize].dirty = true;
            }
            self.touch(idx);
            Access::Hit
        } else {
            self.misses += 1;
            Access::Miss
        }
    }

    /// Inserts `page` after its disk read completed; evicts LRU pages while
    /// over capacity, writing the evicted *dirty* page ids into
    /// `dirty_evicted` (cleared first — the engine schedules background
    /// writebacks for them and reuses the buffer across calls, so inserting
    /// never allocates in steady state).
    ///
    /// Inserting a page already present just touches it.
    // dasr-lint: no-alloc
    pub fn insert(&mut self, page: u64, dirty: bool, dirty_evicted: &mut Vec<u64>) {
        dirty_evicted.clear();
        if let Some(idx) = self.map.get(page) {
            if dirty {
                self.nodes[idx as usize].dirty = true;
            }
            self.touch(idx);
            self.evict_to_capacity(dirty_evicted);
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    page,
                    dirty,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    page,
                    dirty,
                    prev: NONE,
                    next: NONE,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        self.evict_to_capacity(dirty_evicted);
    }

    /// Shrinks or grows capacity; evicted dirty pages are written into
    /// `dirty_evicted` (cleared first) when shrinking. Used both for
    /// container resizes (immediate) and balloon steps (gradual, small
    /// decrements).
    // dasr-lint: no-alloc
    pub fn set_capacity(&mut self, capacity: usize, dirty_evicted: &mut Vec<u64>) {
        dirty_evicted.clear();
        self.capacity = capacity;
        self.evict_to_capacity(dirty_evicted);
    }

    /// Cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction in `[0, 1]`; `1.0` when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Evicts LRU pages while over capacity, appending dirty victims to
    /// `dirty_evicted` (NOT cleared — callers clear before the first call).
    // dasr-lint: no-alloc
    fn evict_to_capacity(&mut self, dirty_evicted: &mut Vec<u64>) {
        while self.map.len() > self.capacity {
            let tail = self.tail;
            if tail == NONE {
                break;
            }
            // dasr-lint: allow(G3) reason="tail checked against NONE above; LRU links always hold live node indices"
            let node = self.nodes[tail as usize];
            self.unlink(tail);
            self.map.remove(node.page);
            self.free.push(tail);
            if node.dirty {
                dirty_evicted.push(node.page);
            }
        }
    }

    // dasr-lint: no-alloc
    fn touch(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    // dasr-lint: no-alloc
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            // dasr-lint: allow(G3) reason="intrusive-list invariant: unlink is only called with a linked node index"
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NONE {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let n = &mut self.nodes[idx as usize];
        n.prev = NONE;
        n.next = NONE;
    }

    // dasr-lint: no-alloc
    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            // dasr-lint: allow(G3) reason="intrusive-list invariant: push_front is only called with a valid node index"
            let n = &mut self.nodes[idx as usize];
            n.prev = NONE;
            n.next = old_head;
        }
        if old_head != NONE {
            self.nodes[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test shim matching the old allocating API.
    fn insert(bp: &mut BufferPool, page: u64, dirty: bool) -> Vec<u64> {
        let mut out = Vec::new();
        bp.insert(page, dirty, &mut out);
        out
    }

    #[test]
    fn miss_then_hit() {
        let mut bp = BufferPool::new(2);
        assert_eq!(bp.access(1, false), Access::Miss);
        assert!(insert(&mut bp, 1, false).is_empty());
        assert_eq!(bp.access(1, false), Access::Hit);
        assert_eq!(bp.hits(), 1);
        assert_eq!(bp.misses(), 1);
        assert_eq!(bp.hit_ratio(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut bp = BufferPool::new(2);
        insert(&mut bp, 1, false);
        insert(&mut bp, 2, false);
        // Touch page 1 so page 2 is now LRU.
        assert_eq!(bp.access(1, false), Access::Hit);
        insert(&mut bp, 3, false);
        assert_eq!(bp.access(2, false), Access::Miss, "2 was evicted");
        assert_eq!(bp.access(1, false), Access::Hit);
        assert_eq!(bp.access(3, false), Access::Hit);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut bp = BufferPool::new(1);
        insert(&mut bp, 1, false);
        bp.access(1, true); // dirty it
        let evicted = insert(&mut bp, 2, false);
        assert_eq!(evicted, vec![1]);
    }

    #[test]
    fn clean_eviction_silent() {
        let mut bp = BufferPool::new(1);
        insert(&mut bp, 1, false);
        assert!(insert(&mut bp, 2, false).is_empty());
    }

    #[test]
    fn scratch_is_cleared_on_entry() {
        let mut bp = BufferPool::new(10);
        let mut scratch = vec![99, 98];
        bp.insert(1, false, &mut scratch);
        assert!(scratch.is_empty(), "insert clears the scratch");
        let mut scratch = vec![97];
        bp.set_capacity(10, &mut scratch);
        assert!(scratch.is_empty(), "set_capacity clears the scratch");
    }

    #[test]
    fn shrink_capacity_evicts_lru_first() {
        let mut bp = BufferPool::new(4);
        for p in 1..=4 {
            insert(&mut bp, p, p % 2 == 0); // 2 and 4 dirty
        }
        // LRU order (oldest first): 1, 2, 3, 4.
        let mut evicted = Vec::new();
        bp.set_capacity(2, &mut evicted);
        assert_eq!(evicted, vec![2], "only the dirty one among {{1,2}}");
        assert_eq!(bp.used(), 2);
        assert_eq!(bp.access(3, false), Access::Hit);
        assert_eq!(bp.access(4, false), Access::Hit);
    }

    #[test]
    fn grow_capacity_keeps_pages() {
        let mut bp = BufferPool::new(1);
        insert(&mut bp, 1, false);
        let mut evicted = Vec::new();
        bp.set_capacity(10, &mut evicted);
        assert!(evicted.is_empty());
        assert_eq!(bp.access(1, false), Access::Hit);
    }

    #[test]
    fn reinsert_touches_instead_of_duplicating() {
        let mut bp = BufferPool::new(2);
        insert(&mut bp, 1, false);
        insert(&mut bp, 2, false);
        insert(&mut bp, 1, true); // touch + dirty
        assert_eq!(bp.used(), 2);
        // Now 2 is LRU.
        insert(&mut bp, 3, false);
        assert_eq!(bp.access(2, false), Access::Miss);
    }

    #[test]
    fn zero_capacity_pool_caches_nothing() {
        let mut bp = BufferPool::new(0);
        insert(&mut bp, 1, false);
        assert_eq!(bp.used(), 0);
        assert_eq!(bp.access(1, false), Access::Miss);
    }

    #[test]
    fn hit_ratio_with_working_set_larger_than_pool() {
        let mut bp = BufferPool::new(10);
        // Cycle through 20 pages repeatedly: pure LRU with a scan pattern
        // never hits.
        for round in 0..3 {
            for p in 0..20u64 {
                if bp.access(p, false) == Access::Miss {
                    insert(&mut bp, p, false);
                } else if round == 0 {
                    panic!("unexpected hit on cold pool");
                }
            }
        }
        assert_eq!(bp.hits(), 0, "scan larger than pool never hits LRU");
    }

    #[test]
    fn slab_reuse_is_consistent() {
        let mut bp = BufferPool::new(2);
        for p in 0..100u64 {
            insert(&mut bp, p, false);
        }
        assert_eq!(bp.used(), 2);
        assert!(bp.nodes.len() <= 3, "slab should recycle free nodes");
    }

    /// Proves the `strict-invariants` wiring is live: a hole punched into
    /// a probe chain must trip the structural check on the next mutation.
    #[test]
    #[cfg(feature = "strict-invariants")]
    #[should_panic(expected = "occupied slot count must match len")]
    fn strict_invariants_catch_probe_chain_corruption() {
        let mut pm = PageMap::new();
        pm.insert(1, 10);
        pm.insert(2, 20);
        let hole = pm.home(1);
        pm.vals[hole] = NONE; // erase without fixing len or shifting
        pm.insert(3, 30);
    }

    /// Randomized cross-check: the open-addressed [`PageMap`] must behave
    /// exactly like `std::collections::HashMap<u64, u32>` under a mixed
    /// insert/remove/lookup stream, including adversarial keys that
    /// collide in the low bits.
    #[test]
    fn page_map_matches_std_hashmap() {
        let mut pm = PageMap::new();
        let mut oracle = std::collections::HashMap::new();
        let mut state = 0x1234_5678_9abc_def0_u64;
        let mut next = move || {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for step in 0..20_000u32 {
            let r = next();
            // Small key space (low-bit-colliding strides) to force repeated
            // insert/remove of the same keys through probe chains.
            let key = (r % 512) * 1024;
            match r % 3 {
                0 => {
                    pm.insert(key, step);
                    oracle.insert(key, step);
                }
                1 => {
                    pm.remove(key);
                    oracle.remove(&key);
                }
                _ => {
                    assert_eq!(pm.get(key), oracle.get(&key).copied(), "key {key}");
                }
            }
            assert_eq!(pm.len(), oracle.len());
        }
        for (&k, &v) in &oracle {
            assert_eq!(pm.get(k), Some(v));
        }
    }
}
