//! LRU buffer pool with ballooning support.
//!
//! The buffer pool caches data pages in the container's memory. Accesses hit
//! (free) or miss (one disk read); evicted dirty pages cost a background
//! disk write. Capacity follows the container's memory allocation, and
//! **ballooning** (§4.3) shrinks capacity gradually so the engine can
//! observe whether the working set still fits — the paper's mechanism for
//! safely probing low memory demand.
//!
//! Implementation: an intrusive doubly-linked LRU list over a slab, with a
//! `HashMap` page index — O(1) access, insert and evict.

use std::collections::HashMap;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    page: u64,
    dirty: bool,
    prev: u32,
    next: u32,
}

/// Result of a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Page was cached; the access proceeds immediately.
    Hit,
    /// Page was not cached; the engine must read it from disk and then call
    /// [`BufferPool::insert`].
    Miss,
}

/// An LRU page cache.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    map: HashMap<u64, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
        }
    }

    /// Current capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently cached.
    pub fn used(&self) -> usize {
        self.map.len()
    }

    /// Accesses `page`; on a hit the page is touched (moved to MRU) and
    /// marked dirty if `write`. On a miss the caller performs the disk read
    /// and then calls [`insert`](Self::insert).
    pub fn access(&mut self, page: u64, write: bool) -> Access {
        if let Some(&idx) = self.map.get(&page) {
            self.hits += 1;
            if write {
                self.nodes[idx as usize].dirty = true;
            }
            self.touch(idx);
            Access::Hit
        } else {
            self.misses += 1;
            Access::Miss
        }
    }

    /// Inserts `page` after its disk read completed; evicts LRU pages while
    /// over capacity and returns the evicted *dirty* page ids (the engine
    /// schedules background writebacks for them).
    ///
    /// Inserting a page already present just touches it.
    pub fn insert(&mut self, page: u64, dirty: bool) -> Vec<u64> {
        if let Some(&idx) = self.map.get(&page) {
            if dirty {
                self.nodes[idx as usize].dirty = true;
            }
            self.touch(idx);
            return self.evict_to_capacity();
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    page,
                    dirty,
                    prev: NONE,
                    next: NONE,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    page,
                    dirty,
                    prev: NONE,
                    next: NONE,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        self.evict_to_capacity()
    }

    /// Shrinks or grows capacity; returns evicted dirty pages when
    /// shrinking. Used both for container resizes (immediate) and balloon
    /// steps (gradual, small decrements).
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<u64> {
        self.capacity = capacity;
        self.evict_to_capacity()
    }

    /// Cumulative hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction in `[0, 1]`; `1.0` when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn evict_to_capacity(&mut self) -> Vec<u64> {
        let mut dirty_evicted = Vec::new();
        while self.map.len() > self.capacity {
            let tail = self.tail;
            if tail == NONE {
                break;
            }
            let node = self.nodes[tail as usize];
            self.unlink(tail);
            self.map.remove(&node.page);
            self.free.push(tail);
            if node.dirty {
                dirty_evicted.push(node.page);
            }
        }
        dirty_evicted
    }

    fn touch(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NONE {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        let n = &mut self.nodes[idx as usize];
        n.prev = NONE;
        n.next = NONE;
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.nodes[idx as usize];
            n.prev = NONE;
            n.next = old_head;
        }
        if old_head != NONE {
            self.nodes[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut bp = BufferPool::new(2);
        assert_eq!(bp.access(1, false), Access::Miss);
        assert!(bp.insert(1, false).is_empty());
        assert_eq!(bp.access(1, false), Access::Hit);
        assert_eq!(bp.hits(), 1);
        assert_eq!(bp.misses(), 1);
        assert_eq!(bp.hit_ratio(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut bp = BufferPool::new(2);
        bp.insert(1, false);
        bp.insert(2, false);
        // Touch page 1 so page 2 is now LRU.
        assert_eq!(bp.access(1, false), Access::Hit);
        bp.insert(3, false);
        assert_eq!(bp.access(2, false), Access::Miss, "2 was evicted");
        assert_eq!(bp.access(1, false), Access::Hit);
        assert_eq!(bp.access(3, false), Access::Hit);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut bp = BufferPool::new(1);
        bp.insert(1, false);
        bp.access(1, true); // dirty it
        let evicted = bp.insert(2, false);
        assert_eq!(evicted, vec![1]);
    }

    #[test]
    fn clean_eviction_silent() {
        let mut bp = BufferPool::new(1);
        bp.insert(1, false);
        assert!(bp.insert(2, false).is_empty());
    }

    #[test]
    fn shrink_capacity_evicts_lru_first() {
        let mut bp = BufferPool::new(4);
        for p in 1..=4 {
            bp.insert(p, p % 2 == 0); // 2 and 4 dirty
        }
        // LRU order (oldest first): 1, 2, 3, 4.
        let evicted = bp.set_capacity(2);
        assert_eq!(evicted, vec![2], "only the dirty one among {{1,2}}");
        assert_eq!(bp.used(), 2);
        assert_eq!(bp.access(3, false), Access::Hit);
        assert_eq!(bp.access(4, false), Access::Hit);
    }

    #[test]
    fn grow_capacity_keeps_pages() {
        let mut bp = BufferPool::new(1);
        bp.insert(1, false);
        assert!(bp.set_capacity(10).is_empty());
        assert_eq!(bp.access(1, false), Access::Hit);
    }

    #[test]
    fn reinsert_touches_instead_of_duplicating() {
        let mut bp = BufferPool::new(2);
        bp.insert(1, false);
        bp.insert(2, false);
        bp.insert(1, true); // touch + dirty
        assert_eq!(bp.used(), 2);
        // Now 2 is LRU.
        bp.insert(3, false);
        assert_eq!(bp.access(2, false), Access::Miss);
    }

    #[test]
    fn zero_capacity_pool_caches_nothing() {
        let mut bp = BufferPool::new(0);
        bp.insert(1, false);
        assert_eq!(bp.used(), 0);
        assert_eq!(bp.access(1, false), Access::Miss);
    }

    #[test]
    fn hit_ratio_with_working_set_larger_than_pool() {
        let mut bp = BufferPool::new(10);
        // Cycle through 20 pages repeatedly: pure LRU with a scan pattern
        // never hits.
        for round in 0..3 {
            for p in 0..20u64 {
                if bp.access(p, false) == Access::Miss {
                    bp.insert(p, false);
                } else if round == 0 {
                    panic!("unexpected hit on cold pool");
                }
            }
        }
        assert_eq!(bp.hits(), 0, "scan larger than pool never hits LRU");
    }

    #[test]
    fn slab_reuse_is_consistent() {
        let mut bp = BufferPool::new(2);
        for p in 0..100u64 {
            bp.insert(p, false);
        }
        assert_eq!(bp.used(), 2);
        assert!(bp.nodes.len() <= 3, "slab should recycle free nodes");
    }
}
