//! Wait-statistics accounting — the simulator's `sys.dm_os_wait_stats`.
//!
//! Mature engines report hundreds of wait types; the paper maps them with
//! rules onto a broad set of classes for the key physical and logical
//! resources (§3.1): CPU (signal waits), memory, disk I/O, log I/O, locks,
//! and system. We keep that classification (plus latches, shown separately
//! in Figure 13(c)).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Broad wait classes (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WaitClass {
    /// Signal wait: time between a task becoming runnable and getting a CPU.
    Cpu,
    /// Memory-grant waits (query workspace memory).
    Memory,
    /// Data-file I/O waits (queue + service).
    DiskIo,
    /// Transaction-log write waits.
    LogIo,
    /// Application-level lock waits.
    Lock,
    /// Page-latch waits.
    Latch,
    /// Everything else (system, sleeps we classify as waits, …).
    Other,
}

/// All wait classes, in canonical order.
pub const WAIT_CLASSES: [WaitClass; 7] = [
    WaitClass::Cpu,
    WaitClass::Memory,
    WaitClass::DiskIo,
    WaitClass::LogIo,
    WaitClass::Lock,
    WaitClass::Latch,
    WaitClass::Other,
];

impl WaitClass {
    /// Canonical index (order of [`WAIT_CLASSES`]).
    pub fn index(self) -> usize {
        match self {
            WaitClass::Cpu => 0,
            WaitClass::Memory => 1,
            WaitClass::DiskIo => 2,
            WaitClass::LogIo => 3,
            WaitClass::Lock => 4,
            WaitClass::Latch => 5,
            WaitClass::Other => 6,
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::Cpu => "cpu",
            WaitClass::Memory => "memory",
            WaitClass::DiskIo => "disk_io",
            WaitClass::LogIo => "log_io",
            WaitClass::Lock => "lock",
            WaitClass::Latch => "latch",
            WaitClass::Other => "other",
        }
    }
}

impl fmt::Display for WaitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cumulative wait microseconds per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaitStats {
    us: [u64; WAIT_CLASSES.len()],
}

impl WaitStats {
    /// All-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `us` microseconds of wait to `class`.
    pub fn add(&mut self, class: WaitClass, us: u64) {
        // dasr-lint: allow(G3) reason="WaitClass::index() is enum-bounded, always inside the fixed-size array"
        self.us[class.index()] += us;
    }

    /// Total wait microseconds across all classes.
    pub fn total(&self) -> u64 {
        self.us.iter().sum()
    }

    /// Per-class wait as a fraction of the total (zeros when total is 0).
    pub fn percentages(&self) -> [f64; WAIT_CLASSES.len()] {
        let total = self.total();
        let mut out = [0.0; WAIT_CLASSES.len()];
        if total > 0 {
            for (o, &v) in out.iter_mut().zip(self.us.iter()) {
                *o = v as f64 / total as f64 * 100.0;
            }
        }
        out
    }

    /// The difference `self - earlier`, class-wise (saturating).
    pub fn delta_since(&self, earlier: &WaitStats) -> WaitStats {
        let mut out = WaitStats::new();
        for (i, o) in out.us.iter_mut().enumerate() {
            *o = self.us[i].saturating_sub(earlier.us[i]);
        }
        out
    }

    /// Adds every class of `other` into `self`.
    pub fn merge(&mut self, other: &WaitStats) {
        for (s, o) in self.us.iter_mut().zip(other.us.iter()) {
            *s += o;
        }
    }
}

impl Index<WaitClass> for WaitStats {
    type Output = u64;

    fn index(&self, class: WaitClass) -> &u64 {
        // dasr-lint: allow(G3) reason="WaitClass::index() is enum-bounded, always inside the fixed-size array"
        &self.us[class.index()]
    }
}

impl IndexMut<WaitClass> for WaitStats {
    fn index_mut(&mut self, class: WaitClass) -> &mut u64 {
        &mut self.us[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut w = WaitStats::new();
        w.add(WaitClass::Cpu, 100);
        w.add(WaitClass::Lock, 300);
        w.add(WaitClass::Cpu, 50);
        assert_eq!(w[WaitClass::Cpu], 150);
        assert_eq!(w.total(), 450);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut w = WaitStats::new();
        w.add(WaitClass::DiskIo, 250);
        w.add(WaitClass::LogIo, 750);
        let p = w.percentages();
        assert_eq!(p[WaitClass::DiskIo.index()], 25.0);
        assert_eq!(p[WaitClass::LogIo.index()], 75.0);
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_percentages_are_zero() {
        assert_eq!(WaitStats::new().percentages(), [0.0; 7]);
    }

    #[test]
    fn delta_and_merge() {
        let mut a = WaitStats::new();
        a.add(WaitClass::Memory, 500);
        let mut b = a;
        b.add(WaitClass::Memory, 200);
        b.add(WaitClass::Latch, 10);
        let d = b.delta_since(&a);
        assert_eq!(d[WaitClass::Memory], 200);
        assert_eq!(d[WaitClass::Latch], 10);

        let mut m = WaitStats::new();
        m.merge(&a);
        m.merge(&d);
        assert_eq!(m[WaitClass::Memory], 700);
    }

    #[test]
    fn class_indices_match_order() {
        for (i, class) in WAIT_CLASSES.into_iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(WaitClass::DiskIo.to_string(), "disk_io");
        assert_eq!(WaitClass::Lock.to_string(), "lock");
    }
}
