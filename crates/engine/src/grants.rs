//! Memory-grant admission control.
//!
//! Queries reserving workspace memory (sorts, hash joins) obtain a *memory
//! grant* before executing; when the grant pool is exhausted they queue, and
//! that queueing time is the memory wait class the estimator consumes
//! (`RESOURCE_SEMAPHORE` waits in SQL Server terms). The pool is a fixed
//! fraction of the container's memory and therefore shrinks/grows with
//! container resizes.

use crate::time::SimTime;
use std::collections::VecDeque;

pub use crate::request::ReqId;

/// A waiter that has just received its grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantedMemory {
    /// The resumed request.
    pub req: ReqId,
    /// Megabytes granted.
    pub mb: u32,
    /// How long it waited, in microseconds.
    pub wait_us: u64,
}

/// FIFO memory-grant pool.
#[derive(Debug)]
pub struct GrantPool {
    pool_mb: u64,
    granted_mb: u64,
    waiters: VecDeque<(ReqId, u32, SimTime)>,
}

impl GrantPool {
    /// Creates a pool of `pool_mb` megabytes.
    pub fn new(pool_mb: u64) -> Self {
        Self {
            pool_mb,
            granted_mb: 0,
            waiters: VecDeque::new(),
        }
    }

    /// Total pool size in MB.
    pub fn pool_mb(&self) -> u64 {
        self.pool_mb
    }

    /// Outstanding granted MB.
    pub fn granted_mb(&self) -> u64 {
        self.granted_mb
    }

    /// Requests queued for a grant.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// Resizes the pool (container resize). Over-committed grants are
    /// honored; new grants wait until usage drops below the new size.
    pub fn resize(&mut self, pool_mb: u64) {
        self.pool_mb = pool_mb;
    }

    /// Attempts to grant `mb` to `req`. Grants exceeding the entire pool are
    /// clamped to the pool size (a query can never get more than exists).
    /// Returns `true` when granted immediately, `false` when queued.
    // dasr-lint: no-alloc
    pub fn acquire(&mut self, req: ReqId, mb: u32, now: SimTime) -> bool {
        let need = u64::from(mb).min(self.pool_mb).max(1);
        if self.waiters.is_empty() && self.granted_mb + need <= self.pool_mb {
            self.granted_mb += need;
            true
        } else {
            self.waiters.push_back((req, need as u32, now));
            false
        }
    }

    /// Releases `mb` previously granted to a request, waking FIFO waiters
    /// that now fit. Woken waiters are written into `out` (cleared first —
    /// the caller owns and reuses the buffer, so releasing never allocates).
    // dasr-lint: no-alloc
    pub fn release(&mut self, mb: u32, now: SimTime, out: &mut Vec<GrantedMemory>) {
        out.clear();
        self.granted_mb = self.granted_mb.saturating_sub(u64::from(mb));
        while let Some(&(req, need, since)) = self.waiters.front() {
            let need_clamped = u64::from(need).min(self.pool_mb).max(1);
            if self.granted_mb + need_clamped <= self.pool_mb {
                self.waiters.pop_front();
                self.granted_mb += need_clamped;
                out.push(GrantedMemory {
                    req,
                    mb: need_clamped as u32,
                    wait_us: now - since,
                });
            } else {
                break;
            }
        }
    }

    /// Removes `req` from the wait queue (abort).
    // dasr-lint: no-alloc
    pub fn cancel(&mut self, req: ReqId) {
        self.waiters.retain(|&(r, _, _)| r != req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime(0);

    #[test]
    fn grants_until_full_then_queues() {
        let mut g = GrantPool::new(100);
        assert!(g.acquire(1, 60, T0));
        assert!(!g.acquire(2, 60, T0));
        assert_eq!(g.granted_mb(), 60);
        assert_eq!(g.waiting(), 1);
    }

    #[test]
    fn release_wakes_fifo() {
        let mut g = GrantPool::new(100);
        assert!(g.acquire(1, 80, T0));
        assert!(!g.acquire(2, 50, SimTime(10)));
        assert!(!g.acquire(3, 10, SimTime(20)), "no barging");
        let mut woken = Vec::new();
        g.release(80, SimTime(500), &mut woken);
        assert_eq!(woken.len(), 2);
        assert_eq!(woken[0].req, 2);
        assert_eq!(woken[0].wait_us, 490);
        assert_eq!(woken[1].req, 3);
        assert_eq!(g.granted_mb(), 60);
    }

    #[test]
    fn oversized_request_is_clamped_to_pool() {
        let mut g = GrantPool::new(50);
        assert!(g.acquire(1, 500, T0), "clamped to pool size");
        assert_eq!(g.granted_mb(), 50);
    }

    #[test]
    fn resize_down_honors_existing_grants() {
        let mut g = GrantPool::new(100);
        assert!(g.acquire(1, 100, T0));
        g.resize(40);
        assert!(!g.acquire(2, 10, T0));
        let mut woken = Vec::new();
        g.release(100, SimTime(100), &mut woken);
        assert_eq!(woken.len(), 1);
        assert_eq!(woken[0].mb, 10);
        assert_eq!(g.granted_mb(), 10);
    }

    #[test]
    fn cancel_removes_waiter() {
        let mut g = GrantPool::new(10);
        assert!(g.acquire(1, 10, T0));
        assert!(!g.acquire(2, 10, T0));
        g.cancel(2);
        let mut woken = vec![GrantedMemory {
            req: 9,
            mb: 1,
            wait_us: 0,
        }];
        g.release(10, SimTime(5), &mut woken);
        assert!(woken.is_empty(), "scratch cleared on entry");
    }

    #[test]
    fn zero_mb_grant_counts_minimum_one() {
        let mut g = GrantPool::new(10);
        assert!(g.acquire(1, 0, T0));
        assert_eq!(g.granted_mb(), 1);
    }
}
