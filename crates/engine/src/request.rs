//! Requests and their operations.
//!
//! A request (one transaction or query) is a sequence of [`Op`]s executed in
//! order by the engine. Workload generators (`dasr-workloads`) compose these
//! from distributions; the engine advances each request as a small state
//! machine, blocking on whichever resource an operation needs.

use crate::time::SimTime;
use crate::waits::WaitStats;

/// Request identifier, assigned by the engine at submission.
///
/// Opaque: the engine packs a slab slot index and generation into the
/// value, so ids are unique per engine but not dense or sequential.
pub type ReqId = u64;

/// One operation within a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Consume `us` core-microseconds of CPU.
    CpuBurst {
        /// Core-microseconds of work.
        us: u64,
    },
    /// Access a data page: buffer-pool hit proceeds immediately; a miss
    /// performs one disk read. `write` marks the page dirty.
    PageAccess {
        /// Page identifier within the tenant database.
        page: u64,
        /// Whether the access dirties the page.
        write: bool,
    },
    /// Append `bytes` to the transaction log (commit path).
    LogWrite {
        /// Bytes appended.
        bytes: u32,
    },
    /// Acquire an application-level lock; held until the request completes
    /// (strict two-phase locking) unless explicitly released earlier.
    ///
    /// **Deadlock avoidance is the workload's responsibility**: requests
    /// must acquire locks in increasing lock-id order and take any
    /// [`Op::MemoryGrant`] before their first lock. The engine does not run
    /// a deadlock detector (the bundled workloads all follow this
    /// discipline, as do well-behaved OLTP applications).
    LockAcquire {
        /// Lock identifier.
        lock: u32,
        /// Exclusive (`true`) or shared (`false`).
        exclusive: bool,
    },
    /// Release a previously acquired lock early.
    LockRelease {
        /// Lock identifier.
        lock: u32,
    },
    /// Reserve `mb` of query-workspace memory until the request completes
    /// (memory grant); waits when the grant pool is exhausted. One grant
    /// per request: if the request already holds a grant, further grant
    /// operations are no-ops (engines grant per statement, and this rules
    /// out grant-vs-grant deadlocks).
    MemoryGrant {
        /// Megabytes requested.
        mb: u32,
    },
    /// Passive delay (client think time / coordination stalls). Accounted
    /// as `WaitClass::Other`.
    Think {
        /// Microseconds of delay.
        us: u64,
    },
}

/// A complete request specification: the ordered operations to execute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequestSpec {
    /// Operations, executed in order.
    pub ops: Vec<Op>,
}

impl RequestSpec {
    /// Creates a spec from operations.
    pub fn new(ops: Vec<Op>) -> Self {
        Self { ops }
    }

    /// Total CPU work in the spec, in core-microseconds.
    pub fn total_cpu_us(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::CpuBurst { us } => *us,
                _ => 0,
            })
            .sum()
    }

    /// Number of page accesses in the spec.
    pub fn page_accesses(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::PageAccess { .. }))
            .count()
    }
}

/// Builder for request specs, used heavily by the workload generators.
#[derive(Debug, Default)]
pub struct RequestBuilder {
    ops: Vec<Op>,
}

impl RequestBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a CPU burst of `us` core-microseconds.
    pub fn cpu(mut self, us: u64) -> Self {
        self.ops.push(Op::CpuBurst { us });
        self
    }

    /// Appends a read page access.
    pub fn read(mut self, page: u64) -> Self {
        self.ops.push(Op::PageAccess { page, write: false });
        self
    }

    /// Appends a write page access.
    pub fn write(mut self, page: u64) -> Self {
        self.ops.push(Op::PageAccess { page, write: true });
        self
    }

    /// Appends a log append of `bytes`.
    pub fn log(mut self, bytes: u32) -> Self {
        self.ops.push(Op::LogWrite { bytes });
        self
    }

    /// Appends a lock acquisition.
    pub fn lock(mut self, lock: u32, exclusive: bool) -> Self {
        self.ops.push(Op::LockAcquire { lock, exclusive });
        self
    }

    /// Appends an early lock release.
    pub fn unlock(mut self, lock: u32) -> Self {
        self.ops.push(Op::LockRelease { lock });
        self
    }

    /// Appends a memory-grant reservation of `mb`.
    pub fn grant(mut self, mb: u32) -> Self {
        self.ops.push(Op::MemoryGrant { mb });
        self
    }

    /// Appends think time.
    pub fn think(mut self, us: u64) -> Self {
        self.ops.push(Op::Think { us });
        self
    }

    /// Finishes the spec.
    pub fn build(self) -> RequestSpec {
        RequestSpec::new(self.ops)
    }
}

/// A finished request, as reported in interval telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// CPU service received, in core-microseconds.
    pub cpu_service_us: u64,
    /// Waits attributed to this request.
    pub waits: WaitStats,
}

impl CompletedRequest {
    /// End-to-end latency in microseconds.
    pub fn latency_us(&self) -> u64 {
        self.completed - self.arrived
    }

    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_us() as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waits::WaitClass;

    #[test]
    fn builder_produces_ordered_ops() {
        let spec = RequestBuilder::new()
            .lock(1, true)
            .cpu(100)
            .read(42)
            .write(43)
            .log(512)
            .unlock(1)
            .grant(8)
            .think(10)
            .build();
        assert_eq!(spec.ops.len(), 8);
        assert_eq!(
            spec.ops[0],
            Op::LockAcquire {
                lock: 1,
                exclusive: true
            }
        );
        assert_eq!(spec.ops[4], Op::LogWrite { bytes: 512 });
    }

    #[test]
    fn spec_accessors() {
        let spec = RequestBuilder::new().cpu(100).cpu(200).read(1).build();
        assert_eq!(spec.total_cpu_us(), 300);
        assert_eq!(spec.page_accesses(), 1);
    }

    #[test]
    fn completed_latency() {
        let mut waits = WaitStats::new();
        waits.add(WaitClass::DiskIo, 400);
        let c = CompletedRequest {
            arrived: SimTime::from_micros(1_000),
            completed: SimTime::from_micros(3_500),
            cpu_service_us: 2_100,
            waits,
        };
        assert_eq!(c.latency_us(), 2_500);
        assert_eq!(c.latency_ms(), 2.5);
    }
}
