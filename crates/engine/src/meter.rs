//! Utilization metering helpers.
//!
//! The devices accumulate raw busy counters; these helpers turn them into
//! the utilization percentages the telemetry reports (§3.1), clamped to
//! `[0, 100]` so float dust or lumped attribution at completion time never
//! reports impossible utilization.

/// CPU utilization %: work done (core-µs) over capacity (cores × interval).
pub fn cpu_utilization_pct(work_core_us: u64, cores: f64, interval_us: u64) -> f64 {
    assert!(cores > 0.0, "cores must be positive");
    if interval_us == 0 {
        return 0.0;
    }
    (work_core_us as f64 / (cores * interval_us as f64) * 100.0).clamp(0.0, 100.0)
}

/// Device utilization %: busy µs over the interval.
pub fn device_utilization_pct(busy_us: u64, interval_us: u64) -> f64 {
    if interval_us == 0 {
        return 0.0;
    }
    (busy_us as f64 / interval_us as f64 * 100.0).clamp(0.0, 100.0)
}

/// Memory utilization %: used pages over capacity.
pub fn memory_utilization_pct(used_pages: usize, capacity_pages: usize) -> f64 {
    if capacity_pages == 0 {
        return 0.0;
    }
    (used_pages as f64 / capacity_pages as f64 * 100.0).clamp(0.0, 100.0)
}

/// Average operation rate over the interval, per second.
pub fn ops_per_sec(ops: u64, interval_us: u64) -> f64 {
    if interval_us == 0 {
        return 0.0;
    }
    ops as f64 * 1_000_000.0 / interval_us as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_utilization() {
        // 2 cores, 1 s interval, 1 core-second of work => 50%.
        assert_eq!(cpu_utilization_pct(1_000_000, 2.0, 1_000_000), 50.0);
        assert_eq!(cpu_utilization_pct(0, 2.0, 1_000_000), 0.0);
        // Lumped attribution can exceed capacity momentarily; clamped.
        assert_eq!(cpu_utilization_pct(10_000_000, 1.0, 1_000_000), 100.0);
    }

    #[test]
    fn device_utilization() {
        assert_eq!(device_utilization_pct(250_000, 1_000_000), 25.0);
        assert_eq!(device_utilization_pct(0, 0), 0.0);
    }

    #[test]
    fn memory_utilization() {
        assert_eq!(memory_utilization_pct(50, 100), 50.0);
        assert_eq!(memory_utilization_pct(5, 0), 0.0);
        assert_eq!(memory_utilization_pct(200, 100), 100.0);
    }

    #[test]
    fn rates() {
        assert_eq!(ops_per_sec(600, 60_000_000), 10.0);
        assert_eq!(ops_per_sec(5, 0), 0.0);
    }
}
