//! Hierarchical bucketed event wheel — the engine's fast event queue.
//!
//! The simulation's event queue was a `BinaryHeap<Reverse<(SimTime, u64,
//! Ev)>>`: every push and pop pays `O(log n)` comparisons on a 24-byte
//! tuple, and the heap's access pattern is cache-hostile. Discrete-event
//! timestamps, however, are *almost sorted*: most events (governor ready
//! callbacks, CPU-burst and I/O completions) land within a few milliseconds
//! of the clock. [`EventWheel`] exploits that, the classic timer-wheel
//! design used by OS timer subsystems:
//!
//! - **Near events** (`time < base + SPAN`, with `SPAN` = 4096 µs) go into
//!   one of `SPAN` µs-granularity buckets (`slot = time % SPAN`). A bucket
//!   holds events of exactly one timestamp at a time, in push order — which
//!   is sequence order, so FIFO pop preserves the `(time, seq)` total
//!   order. An occupancy bitmap (64 words) finds the next non-empty bucket
//!   with a handful of `trailing_zeros` scans.
//! - **Far events** overflow into a small `BinaryHeap` ordered by
//!   `(time, seq)`. Whenever the window advances (`base` moves up to the
//!   time of the event just popped, or to the overflow minimum when the
//!   buckets are empty), due overflow entries drain into buckets — in heap
//!   order, so same-timestamp ties drain in sequence order.
//!
//! The pop order is **exactly** the heap's `(time, seq)` order; the
//! property test in `tests/event_wheel_properties.rs` checks this against a
//! `BinaryHeap` oracle over randomized streams including ties and
//! far-future times.
//!
//! ## Window invariants
//!
//! 1. Every bucketed event has `base <= time < base + SPAN`; the slot↔time
//!    mapping is a bijection within the window, so a bucket never mixes
//!    timestamps.
//! 2. Every overflow event has `time >= base + SPAN` (maintained by
//!    draining on every rebase), so bucketed events always precede
//!    overflow events.
//! 3. `base` only advances to timestamps that have already been reached by
//!    the popped-event clock, so a later push (which the engine issues at
//!    its current clock or after) is never below `base`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Width of the near window, in microseconds (= number of buckets).
const SPAN: usize = 4096;
/// Occupancy bitmap words (`SPAN / 64`).
const WORDS: usize = SPAN / 64;

/// Mutation count below which `strict-invariants` checks run every time
/// (unit tests); past it they sample every [`CHECK_EVERY`]th mutation so
/// the O(`SPAN`) scan amortizes to ~O(1) in long simulations.
#[cfg(feature = "strict-invariants")]
const CHECK_ALWAYS: u64 = 64;
#[cfg(feature = "strict-invariants")]
const CHECK_EVERY: u64 = 1024;

/// A monotone event queue ordered by `(time, seq)`.
///
/// `seq` values must be unique per queue (the engine's global event
/// counter); times pushed after a pop must be `>=` that pop's time.
#[derive(Debug)]
pub struct EventWheel<E> {
    /// Window start: no event below this time remains in the wheel.
    base: u64,
    /// `SPAN` µs-granularity buckets; `slot = time % SPAN`.
    buckets: Vec<VecDeque<(u64, u64, E)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Events currently held in buckets.
    bucket_len: usize,
    /// Far-future events (`time >= base + SPAN`), min-ordered.
    overflow: BinaryHeap<Reverse<(u64, u64, E)>>,
    #[cfg(feature = "strict-invariants")]
    check_tick: u64,
}

impl<E: Copy + Ord> EventWheel<E> {
    /// Creates an empty wheel with its window starting at time 0.
    pub fn new() -> Self {
        Self {
            base: 0,
            buckets: (0..SPAN).map(|_| VecDeque::new()).collect(),
            occupied: [0; WORDS],
            bucket_len: 0,
            overflow: BinaryHeap::new(),
            #[cfg(feature = "strict-invariants")]
            check_tick: 0,
        }
    }

    /// Total queued events.
    pub fn len(&self) -> usize {
        self.bucket_len + self.overflow.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues `ev` at `(time, seq)`.
    ///
    /// `time` must be `>=` the time of the most recent [`pop_due`]
    /// result (debug-asserted via the window base).
    ///
    /// [`pop_due`]: Self::pop_due
    // dasr-lint: no-alloc
    pub fn push(&mut self, time: u64, seq: u64, ev: E) {
        debug_assert!(time >= self.base, "push below the wheel window");
        if time < self.base + SPAN as u64 {
            let slot = (time % SPAN as u64) as usize;
            self.buckets[slot].push_back((time, seq, ev));
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.bucket_len += 1;
        } else {
            self.overflow.push(Reverse((time, seq, ev)));
        }
        self.debug_check();
    }

    /// Pops the `(time, seq)`-minimal event if its time is `<= t`;
    /// `None` when the wheel is empty or the next event is after `t`.
    // dasr-lint: no-alloc
    pub fn pop_due(&mut self, t: u64) -> Option<(u64, u64, E)> {
        if self.bucket_len == 0 {
            let &Reverse((ot, _, _)) = self.overflow.peek()?;
            if ot > t {
                return None;
            }
            // Jump the window to the overflow minimum; the drain below
            // refills the buckets, so the scan always finds this event.
            self.rebase(ot);
        }
        let slot = self
            .first_occupied()
            // dasr-lint: allow(G3) reason="wheel invariant: non-zero bucket_len implies an occupied slot; the expect restates it"
            .expect("non-zero bucket_len implies an occupied slot");
        let &(time, seq, ev) = self.buckets[slot]
            .front()
            .expect("occupancy bit set on empty bucket");
        if time > t {
            return None;
        }
        self.buckets[slot].pop_front();
        self.bucket_len -= 1;
        if self.buckets[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        if time > self.base {
            self.rebase(time);
        }
        self.debug_check();
        Some((time, seq, ev))
    }

    /// Advances the window start to `new_base` and drains newly-due
    /// overflow events into their buckets (in heap order, preserving seq
    /// order for equal timestamps).
    // dasr-lint: no-alloc
    fn rebase(&mut self, new_base: u64) {
        debug_assert!(new_base >= self.base);
        self.base = new_base;
        let limit = new_base + SPAN as u64;
        while let Some(&Reverse((time, _, _))) = self.overflow.peek() {
            if time >= limit {
                break;
            }
            // dasr-lint: allow(G3) reason="pop follows a successful peek on the same heap in the same iteration"
            let Reverse((time, seq, ev)) = self.overflow.pop().expect("peeked");
            let slot = (time % SPAN as u64) as usize;
            self.buckets[slot].push_back((time, seq, ev));
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.bucket_len += 1;
        }
    }

    /// First occupied slot in circular order from `base % SPAN` — the
    /// bucket holding the earliest timestamp (window times map to slots
    /// monotonically along that circular order).
    // dasr-lint: no-alloc
    fn first_occupied(&self) -> Option<usize> {
        let start = (self.base % SPAN as u64) as usize;
        let sw = start / 64;
        let sb = start % 64;
        // dasr-lint: allow(G3) reason="sw = start/64 with start < SPAN, inside the fixed occupancy bitmap"
        let head = self.occupied[sw] & (u64::MAX << sb);
        if head != 0 {
            return Some(sw * 64 + head.trailing_zeros() as usize);
        }
        for i in 1..=WORDS {
            let idx = (sw + i) % WORDS;
            let mut word = self.occupied[idx];
            if idx == sw {
                // Wrapped all the way around: only bits below the start.
                word &= !(u64::MAX << sb);
            }
            if word != 0 {
                return Some(idx * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Structural self-check (`strict-invariants` builds only): the window
    /// invariants from the module docs, plus bitmap/bucket agreement. A
    /// violation here means `pop_due` could skip or misorder an event.
    /// Sampled past the first [`CHECK_ALWAYS`] mutations to keep large
    /// simulations tractable.
    fn debug_check(&mut self) {
        #[cfg(feature = "strict-invariants")]
        {
            self.check_tick += 1;
            if self.check_tick > CHECK_ALWAYS && !self.check_tick.is_multiple_of(CHECK_EVERY) {
                return;
            }
            let limit = self.base + SPAN as u64;
            let mut total = 0;
            for (slot, bucket) in self.buckets.iter().enumerate() {
                // dasr-lint: allow(G3) reason="strict-invariants self-check: slot enumerates the fixed bucket array; failure is a deliberate abort"
                let bit = (self.occupied[slot / 64] >> (slot % 64)) & 1 == 1;
                debug_assert_eq!(
                    bit,
                    !bucket.is_empty(),
                    "occupancy bit for slot {slot} disagrees with its bucket"
                );
                total += bucket.len();
                for &(time, _, _) in bucket {
                    debug_assert!(
                        self.base <= time && time < limit,
                        "bucketed time {time} outside window [{}, {limit})",
                        self.base
                    );
                    debug_assert_eq!(
                        (time % SPAN as u64) as usize,
                        slot,
                        "time {time} filed in the wrong bucket"
                    );
                }
            }
            debug_assert_eq!(
                total, self.bucket_len,
                "bucket_len must match the sum of bucket lengths"
            );
            for &Reverse((time, _, _)) in self.overflow.iter() {
                debug_assert!(time >= limit, "overflow time {time} is due but not drained");
            }
        }
    }
}

impl<E: Copy + Ord> Default for EventWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains everything due by `t`, returning `(time, seq)` pairs.
    fn drain(w: &mut EventWheel<u8>, t: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((time, seq, _)) = w.pop_due(t) {
            out.push((time, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = EventWheel::new();
        w.push(30, 1, 0u8);
        w.push(10, 2, 0);
        w.push(10, 3, 0);
        w.push(20, 4, 0);
        assert_eq!(w.len(), 4);
        assert_eq!(drain(&mut w, 100), vec![(10, 2), (10, 3), (20, 4), (30, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn respects_the_due_horizon() {
        let mut w = EventWheel::new();
        w.push(10, 1, 0u8);
        w.push(50, 2, 0);
        assert_eq!(w.pop_due(9), None);
        assert_eq!(w.pop_due(10), Some((10, 1, 0)));
        assert_eq!(w.pop_due(10), None, "50 is not due yet");
        assert_eq!(w.pop_due(50), Some((50, 2, 0)));
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut w = EventWheel::new();
        w.push(5, 1, 0u8);
        w.push(1_000_000, 2, 0); // way beyond the 4096 µs window
        w.push(1_000_000, 3, 0); // same-timestamp tie in overflow
        w.push(9_000_000, 4, 0);
        assert_eq!(w.pop_due(u64::MAX), Some((5, 1, 0)));
        assert_eq!(w.pop_due(u64::MAX), Some((1_000_000, 2, 0)));
        // Push near the new window position after the jump.
        w.push(1_000_001, 5, 0);
        assert_eq!(w.pop_due(u64::MAX), Some((1_000_000, 3, 0)));
        assert_eq!(w.pop_due(u64::MAX), Some((1_000_001, 5, 0)));
        assert_eq!(w.pop_due(u64::MAX), Some((9_000_000, 4, 0)));
        assert_eq!(w.pop_due(u64::MAX), None);
    }

    #[test]
    fn interleaves_pushes_at_the_popped_clock() {
        // The engine pushes follow-up events at the clock of the event
        // just handled; the wheel must order them against queued ones.
        let mut w = EventWheel::new();
        w.push(100, 1, 0u8);
        w.push(300, 2, 0);
        assert_eq!(w.pop_due(1_000), Some((100, 1, 0)));
        w.push(200, 3, 0); // handler schedules something before 300
        w.push(100, 4, 0); // and something right now
        assert_eq!(drain(&mut w, 1_000), vec![(100, 4), (200, 3), (300, 2)]);
    }

    #[test]
    fn window_boundary_times() {
        let mut w = EventWheel::new();
        w.push(SPAN as u64 - 1, 1, 0u8); // last bucket of the window
        w.push(SPAN as u64, 2, 0); // first overflow time
        assert_eq!(w.pop_due(u64::MAX), Some((SPAN as u64 - 1, 1, 0)));
        assert_eq!(w.pop_due(u64::MAX), Some((SPAN as u64, 2, 0)));
    }

    #[test]
    fn slot_collision_across_windows_stays_ordered() {
        // `t` and `t + SPAN` share a slot; the second must wait in
        // overflow until the first is gone, never mixing into its bucket.
        let mut w = EventWheel::new();
        w.push(7, 1, 0u8);
        w.push(7 + SPAN as u64, 2, 0);
        assert_eq!(w.pop_due(u64::MAX), Some((7, 1, 0)));
        assert_eq!(w.pop_due(u64::MAX), Some((7 + SPAN as u64, 2, 0)));
    }

    /// Proves the `strict-invariants` wiring is live: a stray occupancy
    /// bit must trip the structural check on the next mutation.
    #[test]
    #[cfg(feature = "strict-invariants")]
    #[should_panic(expected = "disagrees with its bucket")]
    fn strict_invariants_catch_bitmap_corruption() {
        let mut w = EventWheel::new();
        w.occupied[3] |= 1; // bit set, bucket 192 empty
        w.push(1, 1, 0u8);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: EventWheel<u8> = EventWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.pop_due(u64::MAX), None);
        w.push(1, 1, 0);
        assert_eq!(w.len(), 1);
    }
}
