//! CPU governance.
//!
//! A container granting `c` cores is a *credit* allocation: admitted bursts
//! execute at full single-core speed, and sustained consumption is paced to
//! `c` core-microseconds per microsecond by a [`PacedQueue`]. Time spent
//! queued behind the governor is the **signal wait** (`WaitClass::Cpu`) —
//! the paper's CPU-wait signal (§3.1). Resizes re-rate the queued backlog
//! immediately.

use crate::governor::{Dispatched, PacedQueue};
use crate::time::SimTime;

pub use crate::request::ReqId;

/// Burst headroom, µs of virtual-time lag: `cores × CPU_ALLOWANCE_US`
/// core-µs of work may run unthrottled after idle periods.
const CPU_ALLOWANCE_US: f64 = 50_000.0;

/// A queued CPU burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuJob {
    /// Owning request.
    pub req: ReqId,
    /// Core-microseconds of work.
    pub work_us: u64,
}

/// Credit-governed CPU.
#[derive(Debug)]
pub struct CpuScheduler {
    q: PacedQueue<CpuJob>,
    cores: f64,
}

impl CpuScheduler {
    /// Creates a CPU with `cores` of sustained capacity.
    ///
    /// # Panics
    /// Panics if `cores` is not strictly positive and finite.
    pub fn new(cores: f64) -> Self {
        assert!(
            cores.is_finite() && cores > 0.0,
            "cores must be positive, got {cores}"
        );
        Self {
            q: PacedQueue::new(cores, CPU_ALLOWANCE_US),
            cores,
        }
    }

    /// Changes the core allocation (container resize); queued bursts
    /// dispatch at the new rate.
    pub fn resize(&mut self, cores: f64) {
        assert!(
            cores.is_finite() && cores > 0.0,
            "cores must be positive, got {cores}"
        );
        self.cores = cores;
        self.q.set_rate(cores);
    }

    /// Current core allocation.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// Enqueues a burst; call [`pump`](Self::pump) to dispatch.
    // dasr-lint: no-alloc
    pub fn submit(&mut self, req: ReqId, work_us: u64, now: SimTime) {
        self.q.submit(
            CpuJob { req, work_us },
            work_us.max(1) as f64,
            now.as_micros(),
        );
    }

    /// Dispatches admissible bursts into `out` (cleared first; the caller
    /// owns and reuses the buffer, so pumping never allocates). Returns an
    /// optional ready callback time the engine must schedule.
    // dasr-lint: no-alloc
    pub fn pump(&mut self, now: SimTime, out: &mut Vec<Dispatched<CpuJob>>) -> Option<u64> {
        self.q.pump(now.as_micros(), out)
    }

    /// Handles a ready callback, dispatching into `out` (cleared first).
    // dasr-lint: no-alloc
    pub fn on_ready(
        &mut self,
        at_us: u64,
        now: SimTime,
        out: &mut Vec<Dispatched<CpuJob>>,
    ) -> Option<u64> {
        self.q.on_ready(at_us, now.as_micros(), out)
    }

    /// Bursts queued behind the governor.
    pub fn queued(&self) -> usize {
        self.q.queued()
    }

    /// Throttle backlog, µs.
    pub fn backlog_us(&self, now: SimTime) -> f64 {
        self.q.backlog_us(now.as_micros())
    }

    /// Drains the consumed-work meter (core-µs since last call).
    pub fn take_work_done_us(&mut self) -> f64 {
        self.q.take_consumed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cpu: &mut CpuScheduler, mut ready: Option<u64>) -> Vec<Dispatched<CpuJob>> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while let Some(at) = ready {
            ready = cpu.on_ready(at, SimTime::from_micros(at), &mut buf);
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn isolated_burst_runs_unthrottled_on_small_container() {
        // The key property: half a core does NOT delay an isolated burst
        // (credit semantics, not speed division).
        let mut cpu = CpuScheduler::new(0.5);
        cpu.submit(1, 20_000, SimTime::from_secs(10));
        let mut d = Vec::new();
        let ready = cpu.pump(SimTime::from_secs(10), &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].queued_wait_us, 0);
        assert!(ready.is_none());
    }

    #[test]
    fn sustained_overload_queues_bursts() {
        let mut cpu = CpuScheduler::new(1.0); // allowance 50 ms
        for _ in 0..10 {
            cpu.submit(1, 50_000, SimTime::ZERO);
        }
        let mut d = Vec::new();
        let ready = cpu.pump(SimTime::ZERO, &mut d);
        assert_eq!(d.len(), 2, "the allowance covers ~100 ms of work");
        assert!(ready.is_some());
        let rest = drain(&mut cpu, ready);
        assert_eq!(rest.len(), 8);
        // Last burst dispatches once 8 x 50 ms of credit accrued.
        assert_eq!(rest.last().unwrap().start_us, 400_000);
    }

    #[test]
    fn more_cores_dispatch_backlog_faster() {
        let last_start = |cores: f64| -> u64 {
            let mut cpu = CpuScheduler::new(cores);
            for _ in 0..20 {
                cpu.submit(1, 50_000, SimTime::ZERO);
            }
            let ready = cpu.pump(SimTime::ZERO, &mut Vec::new());
            drain(&mut cpu, ready).last().map_or(0, |d| d.start_us)
        };
        assert!(last_start(8.0) < last_start(1.0) / 4);
    }

    #[test]
    fn resize_rerates_queue() {
        let mut cpu = CpuScheduler::new(1.0);
        for _ in 0..20 {
            cpu.submit(1, 100_000, SimTime::ZERO);
        }
        let ready = cpu.pump(SimTime::ZERO, &mut Vec::new());
        cpu.resize(10.0);
        let rest = drain(&mut cpu, ready);
        let last = rest.last().unwrap().start_us;
        assert!(last < 400_000, "10x cores must drain fast: {last}");
    }

    #[test]
    fn work_metering() {
        let mut cpu = CpuScheduler::new(2.0);
        cpu.submit(1, 300, SimTime::ZERO);
        cpu.submit(1, 700, SimTime::ZERO);
        let _ = cpu.pump(SimTime::ZERO, &mut Vec::new());
        assert_eq!(cpu.take_work_done_us(), 1_000.0);
        assert_eq!(cpu.take_work_done_us(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cores must be positive")]
    fn zero_cores_panics() {
        let _ = CpuScheduler::new(0.0);
    }
}
