//! Generational slab — dense request-state storage with stale-key safety.
//!
//! The engine previously kept per-request state in `HashMap<ReqId, _>`
//! tables: every event handler paid a SipHash probe, and request churn
//! caused constant rehashing traffic. [`GenSlab`] replaces them with a
//! plain `Vec` of slots plus a free list: a key is `generation << 32 |
//! slot_index`, so lookups are one bounds-checked array access plus a
//! generation compare, inserts reuse freed slots, and a key left over from
//! a completed request can never alias the slot's next occupant (the
//! generation is bumped on removal) — the same "get on a removed key
//! returns `None`" behaviour the `HashMap` provided.

/// A slab whose `u64` keys embed a slot index (low 32 bits) and a
/// generation (high 32 bits).
///
/// ```
/// use dasr_engine::slab::GenSlab;
///
/// let mut slab = GenSlab::new();
/// let key = slab.insert("req");
/// assert_eq!(slab.get(key), Some(&"req"));
/// assert_eq!(slab.remove(key), Some("req"));
/// assert_eq!(slab.get(key), None, "stale keys never alias");
/// ```
#[derive(Debug)]
pub struct GenSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    #[cfg(feature = "strict-invariants")]
    check_tick: u64,
    /// Reusable scratch for the free-list duplicate check; capacity is
    /// retained across checks so sampled verification stays
    /// allocation-free once warmed.
    #[cfg(feature = "strict-invariants")]
    check_scratch: Vec<bool>,
}

/// Mutation count below which `strict-invariants` checks run every time
/// (small structures, unit tests); past it they sample every
/// [`CHECK_EVERY`]th mutation so O(size) scans amortize to ~O(1).
#[cfg(feature = "strict-invariants")]
const CHECK_ALWAYS: u64 = 64;
#[cfg(feature = "strict-invariants")]
const CHECK_EVERY: u64 = 1024;

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> GenSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            #[cfg(feature = "strict-invariants")]
            check_tick: 0,
            #[cfg(feature = "strict-invariants")]
            check_scratch: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its key. Freed slots are reused (most
    /// recently freed first), so steady-state request churn allocates
    /// nothing.
    // dasr-lint: no-alloc
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        let key = if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            key(slot.generation, idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            key(0, idx)
        };
        self.debug_check();
        key
    }

    /// Looks up a key; `None` when it was removed (any generation
    /// mismatch) or never existed.
    // dasr-lint: no-alloc
    pub fn get(&self, key: u64) -> Option<&T> {
        let slot = self.slots.get(index_of(key))?;
        if slot.generation != generation_of(key) {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable lookup; same staleness rules as [`get`](Self::get).
    // dasr-lint: no-alloc
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let slot = self.slots.get_mut(index_of(key))?;
        if slot.generation != generation_of(key) {
            return None;
        }
        slot.value.as_mut()
    }

    /// Removes and returns the entry, bumping the slot's generation so the
    /// key (and any copies of it) go stale.
    // dasr-lint: no-alloc
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let idx = index_of(key);
        let slot = self.slots.get_mut(idx)?;
        if slot.generation != generation_of(key) {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        self.debug_check();
        Some(value)
    }

    /// Structural self-check (`strict-invariants` builds only): every slot
    /// is either live or on the free list, exactly once. A violation means
    /// a key could alias a reused slot or a slot could leak forever.
    /// Sampled past the first [`CHECK_ALWAYS`] mutations to keep large
    /// simulations tractable.
    #[inline]
    fn debug_check(&mut self) {
        #[cfg(feature = "strict-invariants")]
        {
            self.check_tick += 1;
            if self.check_tick > CHECK_ALWAYS && !self.check_tick.is_multiple_of(CHECK_EVERY) {
                return;
            }
            let live = self.slots.iter().filter(|s| s.value.is_some()).count();
            debug_assert_eq!(live, self.len, "live slot count must match len");
            debug_assert_eq!(
                self.free.len() + self.len,
                self.slots.len(),
                "every slot must be live or free-listed"
            );
            self.check_scratch.clear();
            self.check_scratch.resize(self.slots.len(), false);
            for &idx in &self.free {
                let idx = idx as usize;
                debug_assert!(
                    self.slots[idx].value.is_none(),
                    "free-listed slot {idx} still holds a value"
                );
                debug_assert!(
                    !self.check_scratch[idx],
                    "slot {idx} appears twice on the free list"
                );
                self.check_scratch[idx] = true;
            }
        }
    }
}

impl<T> Default for GenSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn key(generation: u32, idx: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(idx)
}

#[inline]
fn index_of(key: u64) -> usize {
    (key & u64::from(u32::MAX)) as usize
}

#[inline]
fn generation_of(key: u64) -> u32 {
    (key >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = GenSlab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&10));
        *s.get_mut(b).unwrap() += 1;
        assert_eq!(s.remove(b), Some(21));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(b), None);
    }

    #[test]
    fn slots_are_reused_with_fresh_generations() {
        let mut s = GenSlab::new();
        let a = s.insert("old");
        assert_eq!(s.remove(a), Some("old"));
        let b = s.insert("new");
        assert_eq!(index_of(a), index_of(b), "freed slot is reused");
        assert_ne!(a, b, "but the key differs by generation");
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"new"));
        assert_eq!(s.remove(a), None, "stale remove is a no-op");
        assert_eq!(s.get(b), Some(&"new"));
    }

    #[test]
    fn heavy_churn_stays_dense() {
        let mut s = GenSlab::new();
        let mut keys = Vec::new();
        for round in 0..100 {
            for i in 0..10 {
                keys.push(s.insert(round * 10 + i));
            }
            for k in keys.drain(..) {
                assert!(s.remove(k).is_some());
            }
        }
        assert!(s.is_empty());
        assert!(s.slots.len() <= 10, "churn must not grow the slab");
    }

    /// Proves the `strict-invariants` wiring is live: a corrupted free
    /// list must trip the structural check on the next mutation.
    #[test]
    #[cfg(feature = "strict-invariants")]
    #[should_panic(expected = "every slot must be live or free-listed")]
    fn strict_invariants_catch_free_list_corruption() {
        let mut s = GenSlab::new();
        let a = s.insert(1u8);
        s.remove(a);
        s.free.push(0); // duplicate free-list entry for slot 0
        s.insert(2u8); // reuses slot 0; check sees free + len != slots
    }

    #[test]
    fn unknown_keys_are_safe() {
        let mut s: GenSlab<u8> = GenSlab::new();
        assert_eq!(s.get(12345), None);
        assert_eq!(s.get_mut(u64::MAX), None);
        assert_eq!(s.remove(7), None);
    }
}
