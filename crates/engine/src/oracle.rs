//! Reference engine — the pre-fast-path implementation, kept as a test
//! oracle.
//!
//! [`OracleEngine`] is the engine exactly as it stood before the slab /
//! event-wheel rewrite: request state in `HashMap<ReqId, _>` tables and the
//! event queue in a `BinaryHeap<Reverse<(SimTime, u64, Ev)>>`. It is *not*
//! optimized and allocates freely — its only job is to define the expected
//! telemetry. The property tests in `tests/engine_equivalence.rs` drive
//! randomized request mixes (including mid-run resizes and ballooning)
//! through both engines and require **bit-identical** [`IntervalStats`],
//! following the PR 2 oracle-equivalence pattern (legacy rule chains kept
//! as the oracle for the typed decision engine).
//!
//! Keep this module in sync with intentional *semantic* changes to
//! [`Engine`](crate::Engine) — and with nothing else.

use crate::bufferpool::{Access, BufferPool};
use crate::config::EngineConfig;
use crate::cpu::CpuScheduler;
use crate::device::{IoDevice, IoToken};
use crate::engine::IntervalStats;
use crate::grants::GrantPool;
use crate::locks::LockTable;
use crate::meter;
use crate::request::{CompletedRequest, Op, ReqId, RequestSpec};
use crate::time::SimTime;
use crate::waits::{WaitClass, WaitStats};
use dasr_containers::ResourceVector;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Events in the simulation heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrival(ReqId),
    CpuDone {
        req: ReqId,
        work_us: u64,
        signal_wait_us: u64,
    },
    CpuReady(u64),
    DiskReadDone {
        req: ReqId,
        wait_us: u64,
    },
    DiskReady(u64),
    LogDone {
        req: ReqId,
        wait_us: u64,
    },
    LogReady(u64),
    Wake {
        req: ReqId,
        think_us: u64,
    },
    BalloonStep,
}

#[derive(Debug)]
struct ReqState {
    spec: RequestSpec,
    op: usize,
    arrived: SimTime,
    cpu_service_us: u64,
    waits: WaitStats,
    pending_page: Option<(u64, bool)>,
    granted_mb: u32,
}

/// The reference (pre-fast-path) simulated database server.
#[derive(Debug)]
pub struct OracleEngine {
    cfg: EngineConfig,
    clock: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    next_req: ReqId,
    pending: HashMap<ReqId, RequestSpec>,
    requests: HashMap<ReqId, ReqState>,
    runnable: VecDeque<ReqId>,

    cpu: CpuScheduler,
    disk: IoDevice,
    log: IoDevice,
    pool: BufferPool,
    locks: LockTable,
    grants: GrantPool,
    resources: ResourceVector,

    balloon_target: Option<usize>,

    waits: WaitStats,
    waits_at_interval_start: WaitStats,
    completed: Vec<CompletedRequest>,
    interval_start: SimTime,
    arrivals: u64,
    rejected: u64,
    disk_reads: u64,
    disk_writes: u64,
}

impl OracleEngine {
    /// Creates an engine inside a container granting `resources`.
    pub fn new(cfg: EngineConfig, resources: ResourceVector) -> Self {
        assert!(resources.cpu_cores > 0.0, "container needs CPU");
        assert!(resources.disk_iops > 0.0, "container needs disk IOPS");
        assert!(resources.log_mbps > 0.0, "container needs log bandwidth");
        Self {
            cpu: CpuScheduler::new(resources.cpu_cores),
            disk: IoDevice::disk(resources.disk_iops),
            log: IoDevice::log(resources.log_mbps),
            pool: BufferPool::new(cfg.pool_pages(resources.memory_mb)),
            locks: LockTable::new(),
            grants: GrantPool::new(cfg.grant_mb(resources.memory_mb)),
            resources,
            cfg,
            clock: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            next_req: 0,
            pending: HashMap::new(),
            requests: HashMap::new(),
            runnable: VecDeque::new(),
            balloon_target: None,
            waits: WaitStats::new(),
            waits_at_interval_start: WaitStats::new(),
            completed: Vec::new(),
            interval_start: SimTime::ZERO,
            arrivals: 0,
            rejected: 0,
            disk_reads: 0,
            disk_writes: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.requests.len()
    }

    /// Pre-fills the buffer pool with pages `0..n` (clean), clamped to the
    /// pool capacity.
    pub fn prewarm(&mut self, pages: u64) {
        let mut scratch = Vec::new();
        let n = (pages as usize).min(self.pool.capacity());
        for page in 0..n as u64 {
            self.pool.insert(page, false, &mut scratch);
        }
    }

    /// Schedules `spec` to arrive at `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn submit_at(&mut self, at: SimTime, spec: RequestSpec) {
        assert!(at >= self.clock, "arrival scheduled in the past");
        let id = self.next_req;
        self.next_req += 1;
        self.pending.insert(id, spec);
        self.push_event(at, Ev::Arrival(id));
    }

    /// Processes every event with timestamp ≤ `t`, then advances the clock
    /// to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(Reverse((et, _, _))) = self.events.peek() {
            if *et > t {
                break;
            }
            let Reverse((et, _, ev)) = self.events.pop().expect("peeked");
            debug_assert!(et >= self.clock, "time went backwards");
            self.clock = et;
            self.dispatch(ev);
            self.drain_runnable();
        }
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Applies a container resize — an online operation.
    pub fn apply_resources(&mut self, resources: ResourceVector) {
        assert!(resources.cpu_cores > 0.0, "container needs CPU");
        assert!(resources.disk_iops > 0.0, "container needs disk IOPS");
        assert!(resources.log_mbps > 0.0, "container needs log bandwidth");
        self.resources = resources;
        self.cpu.resize(resources.cpu_cores);
        self.disk.set_rate_per_us(resources.disk_iops / 1_000_000.0);
        self.log.set_rate_per_us(resources.log_mbps);
        self.grants.resize(self.cfg.grant_mb(resources.memory_mb));
        if self.balloon_target.is_none() {
            let mut dirty = Vec::new();
            self.pool
                .set_capacity(self.cfg.pool_pages(resources.memory_mb), &mut dirty);
            self.writeback(dirty.len());
        }
        self.oracle_pump_cpu();
        self.oracle_pump_disk();
        self.oracle_pump_log();
    }

    /// Starts ballooning toward `target_mb` of container memory (§4.3).
    pub fn start_balloon(&mut self, target_mb: f64) {
        let target_pages = self.cfg.pool_pages(target_mb);
        self.balloon_target = Some(target_pages);
        let at = self.clock + self.cfg.balloon_step_us;
        self.push_event(at, Ev::BalloonStep);
    }

    /// Aborts ballooning and restores the pool to the container's full
    /// allocation.
    pub fn abort_balloon(&mut self) {
        if self.balloon_target.take().is_some() {
            let mut dirty = Vec::new();
            self.pool
                .set_capacity(self.cfg.pool_pages(self.resources.memory_mb), &mut dirty);
            self.writeback(dirty.len());
        }
    }

    /// True while a balloon is deflating the pool.
    pub fn balloon_active(&self) -> bool {
        self.balloon_target.is_some()
    }

    /// Ends ballooning *without* restoring capacity.
    pub fn commit_balloon(&mut self) {
        self.balloon_target = None;
    }

    /// Drains telemetry for the interval since the previous call (or since
    /// simulation start).
    pub fn end_interval(&mut self) -> IntervalStats {
        let start = self.interval_start;
        let end = self.clock;
        let interval_us = (end - start).max(1);
        let waits_delta = self.waits.delta_since(&self.waits_at_interval_start);
        self.waits_at_interval_start = self.waits;
        self.interval_start = end;

        let latencies_ms: Vec<f64> = self.completed.drain(..).map(|c| c.latency_ms()).collect();
        let cpu_util_pct = (self.cpu.take_work_done_us() / (self.cpu.cores() * interval_us as f64)
            * 100.0)
            .clamp(0.0, 100.0);
        let disk_util_pct =
            (self.disk.take_consumed() / (self.disk.rate_per_us() * interval_us as f64) * 100.0)
                .clamp(0.0, 100.0);
        let log_util_pct =
            (self.log.take_consumed() / (self.log.rate_per_us() * interval_us as f64) * 100.0)
                .clamp(0.0, 100.0);
        IntervalStats {
            start,
            end,
            cpu_util_pct,
            mem_util_pct: meter::memory_utilization_pct(self.pool.used(), self.pool.capacity()),
            disk_util_pct,
            log_util_pct,
            mem_used_mb: self.cfg.pages_to_mb(self.pool.used()),
            mem_capacity_mb: self.cfg.pages_to_mb(self.pool.capacity()),
            waits: waits_delta,
            completed: latencies_ms.len() as u64,
            latencies_ms,
            arrivals: std::mem::take(&mut self.arrivals),
            rejected: std::mem::take(&mut self.rejected),
            disk_reads: std::mem::take(&mut self.disk_reads),
            disk_writes: std::mem::take(&mut self.disk_writes),
            outstanding: self.requests.len(),
        }
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, ev)));
    }

    fn oracle_pump_cpu(&mut self) {
        let mut dispatched = Vec::new();
        let ready = self.cpu.pump(self.clock, &mut dispatched);
        for d in dispatched {
            self.push_event(
                SimTime::from_micros(d.start_us) + d.payload.work_us.max(1),
                Ev::CpuDone {
                    req: d.payload.req,
                    work_us: d.payload.work_us,
                    signal_wait_us: d.queued_wait_us,
                },
            );
        }
        if let Some(at) = ready {
            self.push_event(SimTime::from_micros(at), Ev::CpuReady(at));
        }
    }

    fn oracle_pump_disk(&mut self) {
        let base = self.disk.base_latency_us();
        let mut dispatched = Vec::new();
        let ready = self.disk.pump(self.clock, &mut dispatched);
        for d in dispatched {
            match d.payload {
                IoToken::Request(req) => {
                    self.push_event(
                        SimTime::from_micros(d.start_us) + base,
                        Ev::DiskReadDone {
                            req,
                            wait_us: d.queued_wait_us + base,
                        },
                    );
                }
                IoToken::Background => {
                    self.disk_writes += 1;
                }
            }
        }
        if let Some(at) = ready {
            self.push_event(SimTime::from_micros(at), Ev::DiskReady(at));
        }
    }

    fn oracle_pump_log(&mut self) {
        let base = self.log.base_latency_us();
        let mut dispatched = Vec::new();
        let ready = self.log.pump(self.clock, &mut dispatched);
        for d in dispatched {
            if let IoToken::Request(req) = d.payload {
                self.push_event(
                    SimTime::from_micros(d.start_us) + base,
                    Ev::LogDone {
                        req,
                        wait_us: d.queued_wait_us + base,
                    },
                );
            }
        }
        if let Some(at) = ready {
            self.push_event(SimTime::from_micros(at), Ev::LogReady(at));
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(id) => self.on_arrival(id),
            Ev::CpuDone {
                req,
                work_us,
                signal_wait_us,
            } => {
                if let Some(state) = self.requests.get_mut(&req) {
                    state.cpu_service_us += work_us;
                    if signal_wait_us > 0 {
                        state.waits.add(WaitClass::Cpu, signal_wait_us);
                        self.waits.add(WaitClass::Cpu, signal_wait_us);
                    }
                    state.op += 1;
                    self.runnable.push_back(req);
                }
            }
            Ev::CpuReady(at) => {
                let mut dispatched = Vec::new();
                let ready = self.cpu.on_ready(at, self.clock, &mut dispatched);
                for d in dispatched {
                    self.push_event(
                        SimTime::from_micros(d.start_us) + d.payload.work_us.max(1),
                        Ev::CpuDone {
                            req: d.payload.req,
                            work_us: d.payload.work_us,
                            signal_wait_us: d.queued_wait_us,
                        },
                    );
                }
                if let Some(at) = ready {
                    self.push_event(SimTime::from_micros(at), Ev::CpuReady(at));
                }
            }
            Ev::DiskReadDone { req, wait_us } => {
                self.disk_reads += 1;
                let mut dirty_evicted = 0;
                if let Some(state) = self.requests.get_mut(&req) {
                    state.waits.add(WaitClass::DiskIo, wait_us);
                    self.waits.add(WaitClass::DiskIo, wait_us);
                    let (page, write) = state
                        .pending_page
                        .take()
                        .expect("disk completion without pending page");
                    let mut dirty = Vec::new();
                    self.pool.insert(page, write, &mut dirty);
                    dirty_evicted = dirty.len();
                    state.op += 1;
                    self.runnable.push_back(req);
                }
                self.writeback(dirty_evicted);
            }
            Ev::DiskReady(at) => {
                let base = self.disk.base_latency_us();
                let mut dispatched = Vec::new();
                let ready = self.disk.on_ready(at, self.clock, &mut dispatched);
                for d in dispatched {
                    match d.payload {
                        IoToken::Request(req) => {
                            self.push_event(
                                SimTime::from_micros(d.start_us) + base,
                                Ev::DiskReadDone {
                                    req,
                                    wait_us: d.queued_wait_us + base,
                                },
                            );
                        }
                        IoToken::Background => {
                            self.disk_writes += 1;
                        }
                    }
                }
                if let Some(at) = ready {
                    self.push_event(SimTime::from_micros(at), Ev::DiskReady(at));
                }
            }
            Ev::LogDone { req, wait_us } => {
                if let Some(state) = self.requests.get_mut(&req) {
                    state.waits.add(WaitClass::LogIo, wait_us);
                    self.waits.add(WaitClass::LogIo, wait_us);
                    state.op += 1;
                    self.runnable.push_back(req);
                }
            }
            Ev::LogReady(at) => {
                let base = self.log.base_latency_us();
                let mut dispatched = Vec::new();
                let ready = self.log.on_ready(at, self.clock, &mut dispatched);
                for d in dispatched {
                    if let IoToken::Request(req) = d.payload {
                        self.push_event(
                            SimTime::from_micros(d.start_us) + base,
                            Ev::LogDone {
                                req,
                                wait_us: d.queued_wait_us + base,
                            },
                        );
                    }
                }
                if let Some(at) = ready {
                    self.push_event(SimTime::from_micros(at), Ev::LogReady(at));
                }
            }
            Ev::Wake { req, think_us } => {
                if let Some(state) = self.requests.get_mut(&req) {
                    state.waits.add(WaitClass::Other, think_us);
                    self.waits.add(WaitClass::Other, think_us);
                    state.op += 1;
                    self.runnable.push_back(req);
                }
            }
            Ev::BalloonStep => self.on_balloon_step(),
        }
    }

    fn on_arrival(&mut self, id: ReqId) {
        let spec = self.pending.remove(&id).expect("arrival without spec");
        if self.requests.len() >= self.cfg.max_outstanding {
            self.rejected += 1;
            return;
        }
        self.arrivals += 1;
        self.requests.insert(
            id,
            ReqState {
                spec,
                op: 0,
                arrived: self.clock,
                cpu_service_us: 0,
                waits: WaitStats::new(),
                pending_page: None,
                granted_mb: 0,
            },
        );
        self.runnable.push_back(id);
    }

    fn on_balloon_step(&mut self) {
        let Some(target) = self.balloon_target else {
            return; // balloon aborted; stale event
        };
        let cap = self.pool.capacity();
        if cap > target {
            let step = ((cap as f64 * self.cfg.balloon_step_fraction) as usize)
                .max(self.cfg.balloon_step_min_pages);
            let new_cap = cap.saturating_sub(step).max(target);
            let mut dirty = Vec::new();
            self.pool.set_capacity(new_cap, &mut dirty);
            self.writeback(dirty.len());
            if new_cap > target {
                let at = self.clock + self.cfg.balloon_step_us;
                self.push_event(at, Ev::BalloonStep);
            }
        }
    }

    fn writeback(&mut self, n: usize) {
        let writes = n.div_ceil(self.cfg.writeback_coalesce.max(1) as usize);
        for _ in 0..writes {
            self.disk.submit_low(IoToken::Background, 1.0, self.clock);
        }
        if writes > 0 {
            self.oracle_pump_disk();
        }
    }

    fn drain_runnable(&mut self) {
        while let Some(req) = self.runnable.pop_front() {
            self.advance(req);
        }
    }

    fn advance(&mut self, req: ReqId) {
        loop {
            let Some(state) = self.requests.get_mut(&req) else {
                return;
            };
            let Some(&op) = state.spec.ops.get(state.op) else {
                self.complete_request(req);
                return;
            };
            match op {
                Op::CpuBurst { us } => {
                    self.cpu.submit(req, us, self.clock);
                    self.oracle_pump_cpu();
                    return;
                }
                Op::PageAccess { page, write } => match self.pool.access(page, write) {
                    Access::Hit => {
                        state.op += 1;
                    }
                    Access::Miss => {
                        state.pending_page = Some((page, write));
                        self.disk.submit(IoToken::Request(req), 1.0, self.clock);
                        self.oracle_pump_disk();
                        return;
                    }
                },
                Op::LogWrite { bytes } => {
                    self.log
                        .submit(IoToken::Request(req), f64::from(bytes), self.clock);
                    self.oracle_pump_log();
                    return;
                }
                Op::LockAcquire { lock, exclusive } => {
                    if self.locks.acquire(req, lock, exclusive, self.clock) {
                        state.op += 1;
                    } else {
                        return; // blocked; wait charged on grant
                    }
                }
                Op::LockRelease { lock } => {
                    state.op += 1;
                    let mut granted = Vec::new();
                    self.locks.release(req, lock, self.clock, &mut granted);
                    self.resume_lock_waiters(granted);
                }
                Op::MemoryGrant { mb } => {
                    if state.granted_mb > 0 {
                        state.op += 1;
                        continue;
                    }
                    let clamped = u64::from(mb).min(self.grants.pool_mb()).max(1) as u32;
                    if self.grants.acquire(req, mb, self.clock) {
                        state.granted_mb += clamped;
                        state.op += 1;
                    } else {
                        return; // blocked; wait charged on grant
                    }
                }
                Op::Think { us } => {
                    self.push_event(self.clock + us, Ev::Wake { req, think_us: us });
                    return;
                }
            }
        }
    }

    fn resume_lock_waiters(&mut self, granted: Vec<crate::locks::GrantedWaiter>) {
        for g in granted {
            if let Some(state) = self.requests.get_mut(&g.req) {
                state.waits.add(WaitClass::Lock, g.wait_us);
                self.waits.add(WaitClass::Lock, g.wait_us);
                state.op += 1;
                self.runnable.push_back(g.req);
            }
        }
    }

    fn complete_request(&mut self, req: ReqId) {
        let state = self
            .requests
            .remove(&req)
            .expect("completing unknown request");
        let mut granted = Vec::new();
        self.locks.release_all(req, self.clock, &mut granted);
        self.resume_lock_waiters(granted);
        if state.granted_mb > 0 {
            let mut woken = Vec::new();
            self.grants
                .release(state.granted_mb, self.clock, &mut woken);
            for w in woken {
                if let Some(ws) = self.requests.get_mut(&w.req) {
                    ws.waits.add(WaitClass::Memory, w.wait_us);
                    self.waits.add(WaitClass::Memory, w.wait_us);
                    ws.granted_mb += w.mb;
                    ws.op += 1;
                    self.runnable.push_back(w.req);
                }
            }
        }
        self.completed.push(CompletedRequest {
            arrived: state.arrived,
            completed: self.clock,
            cpu_service_us: state.cpu_service_us,
            waits: state.waits,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestBuilder;

    #[test]
    fn oracle_smoke() {
        let mut e = OracleEngine::new(
            EngineConfig::default(),
            ResourceVector::new(1.0, 64.0, 100.0, 5.0),
        );
        e.submit_at(SimTime::ZERO, RequestBuilder::new().cpu(5_000).build());
        e.run_until(SimTime::from_secs(1));
        let s = e.end_interval();
        assert_eq!(s.completed, 1);
        assert_eq!(s.latencies_ms, vec![5.0]);
    }
}
