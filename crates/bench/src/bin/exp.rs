//! Full-length experiment runner.
//!
//! ```text
//! cargo run --release -p dasr-bench --bin exp -- fig09 [minutes]
//! ```
//!
//! Figures: fig09, fig10, fig11, fig12 (policy comparisons). The default
//! length is 240 minutes; pass a second argument or set `DASR_FULL=1` for
//! the paper's 1440.

use dasr_bench::compare::{print_comparison, run_policy_comparison};
use dasr_core::RunConfig;
use dasr_workloads::{
    CpuIoConfig, CpuIoWorkload, Ds2Config, Ds2Workload, TpccConfig, TpccWorkload, Trace,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let figure = args.get(1).map(String::as_str).unwrap_or("fig09");
    let minutes: usize =
        args.get(2)
            .and_then(|m| m.parse().ok())
            .unwrap_or(if std::env::var("DASR_FULL").is_ok() {
                1440
            } else {
                240
            });
    let base = RunConfig::default();

    match figure {
        "fig09" => {
            let trace = Trace::paper_with_len(2, minutes);
            for factor in [1.25, 5.0] {
                let r = run_policy_comparison(
                    &trace,
                    CpuIoWorkload::new(CpuIoConfig::default()),
                    factor,
                    &base,
                );
                print_comparison(
                    &format!("Figure 9: CPUIO on trace 2, goal {factor}x Max"),
                    &format!("{factor} x p95(Max)"),
                    &r,
                );
            }
        }
        "fig10" => {
            let trace = Trace::paper_with_len(4, minutes);
            let r = run_policy_comparison(
                &trace,
                TpccWorkload::new(TpccConfig::default()),
                1.25,
                &base,
            );
            print_comparison(
                "Figure 10: TPC-C on trace 4, goal 1.25x Max",
                "1.25 x p95(Max)",
                &r,
            );
        }
        "fig11" => {
            let trace = Trace::paper_with_len(3, minutes);
            let r = run_policy_comparison(
                &trace,
                CpuIoWorkload::new(CpuIoConfig::default()),
                5.0,
                &base,
            );
            print_comparison(
                "Figure 11: CPUIO on trace 3, goal 5x Max",
                "5 x p95(Max)",
                &r,
            );
        }
        "fig12" => {
            let trace = Trace::paper_with_len(1, minutes);
            let r =
                run_policy_comparison(&trace, Ds2Workload::new(Ds2Config::default()), 1.25, &base);
            print_comparison(
                "Figure 12: DS2 on trace 1, goal 1.25x Max",
                "1.25 x p95(Max)",
                &r,
            );
        }
        other => {
            eprintln!("unknown figure: {other} (expected fig09|fig10|fig11|fig12)");
            std::process::exit(1);
        }
    }
}
