//! ASCII tables and series plots for experiment output.

/// Renders a simple aligned ASCII table.
///
/// # Panics
/// Panics if a row's length differs from the header's.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:>w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Renders a numeric series as a coarse ASCII sparkline plot, one row per
/// bucket of `bucket` points (mean), with a proportional bar.
pub fn ascii_series(name: &str, values: &[f64], bucket: usize, width: usize) -> String {
    assert!(bucket > 0 && width > 0, "invalid plot spec");
    let mut out = format!("{name} ({} points, bucket = {bucket}):\n", values.len());
    if values.is_empty() {
        return out;
    }
    let maxv = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for (i, chunk) in values.chunks(bucket).enumerate() {
        let finite: Vec<f64> = chunk.iter().copied().filter(|v| v.is_finite()).collect();
        let mean = if finite.is_empty() {
            0.0
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        };
        let bars = ((mean / maxv) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:>5} | {}{} {:.1}\n",
            i * bucket,
            "#".repeat(bars.min(width)),
            " ".repeat(width - bars.min(width)),
            mean
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = ascii_table(
            &["a", "longer"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("333"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = ascii_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn series_scales_bars() {
        let s = ascii_series("x", &[0.0, 10.0, 10.0, 10.0], 2, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].matches('#').count() > lines[1].matches('#').count());
    }

    #[test]
    fn series_handles_nan_and_empty() {
        let s = ascii_series("x", &[f64::NAN, 5.0], 2, 10);
        assert!(s.contains("2 points"));
        let e = ascii_series("empty", &[], 2, 10);
        assert!(e.contains("0 points"));
    }
}
