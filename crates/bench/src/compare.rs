//! The §7 policy-comparison methodology.
//!
//! For one (trace × workload × goal-factor) cell:
//!
//! 1. run **Max** (largest container) — the gold standard; its p95 defines
//!    the latency goal (`goal = factor × p95(Max)`);
//! 2. build **Peak** / **Avg** / **Trace** from the Max run's per-interval
//!    usage profile (§7.2.1) and replay the workload under each;
//! 3. run the online policies **Util** and **Auto** with the goal (§7.2.2).

use dasr_core::policy::offline::{avg_policy, peak_policy, trace_policy, UsageProfile};
use dasr_core::policy::{AutoPolicy, ScalingPolicy, UtilPolicy};
use dasr_core::runner::ClosedLoop;
use dasr_core::{FleetRunner, RunConfig, RunReport, TenantKnobs};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{Trace, Workload};

/// How large an experiment to run — full paper scale or compressed for
/// `cargo bench` turnaround.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// 1440-minute traces (the paper's full length).
    Full,
    /// Compressed traces (default 240 minutes) — the shapes survive, runs
    /// finish in minutes.
    Compressed,
}

impl ExperimentScale {
    /// Trace length in minutes.
    pub fn minutes(self) -> usize {
        match self {
            ExperimentScale::Full => 1440,
            ExperimentScale::Compressed => 240,
        }
    }

    /// Reads the scale from the `DASR_FULL` environment variable (set to
    /// run paper-length experiments).
    pub fn from_env() -> Self {
        if std::env::var("DASR_FULL").is_ok() {
            ExperimentScale::Full
        } else {
            ExperimentScale::Compressed
        }
    }
}

/// Results of one comparison cell.
#[derive(Debug)]
pub struct ComparisonResult {
    /// The derived latency goal, ms.
    pub goal_ms: f64,
    /// p95 of the Max run, ms.
    pub max_p95_ms: f64,
    /// Reports in presentation order: Max, Peak, Avg, Trace, Util, Auto.
    pub reports: Vec<RunReport>,
}

impl ComparisonResult {
    /// Looks up a report by policy name.
    pub fn report(&self, policy: &str) -> &RunReport {
        self.reports
            .iter()
            .find(|r| r.policy == policy)
            .unwrap_or_else(|| panic!("no report for policy {policy}"))
    }

    /// Cost ratio `policy / auto` (how many times more expensive the
    /// alternative is — the paper's headline metric).
    pub fn cost_ratio_vs_auto(&self, policy: &str) -> f64 {
        let auto = self.report("auto").avg_cost_per_interval();
        if auto <= 0.0 {
            f64::NAN
        } else {
            self.report(policy).avg_cost_per_interval() / auto
        }
    }
}

/// Runs the full §7 comparison for one cell.
///
/// `goal_factor` is the multiple of Max's p95 used as the latency goal
/// (1.25 and 5 in the paper). The same seed drives every policy's workload
/// so runs are comparable.
pub fn run_policy_comparison<W: Workload + Clone + Sync>(
    trace: &Trace,
    workload: W,
    goal_factor: f64,
    base: &RunConfig,
) -> ComparisonResult {
    // Simulate an already-running database: prewarm the hot set.
    let mut base = base.clone();
    base.prewarm_pages = workload.hot_pages();

    // 1. Max run doubles as the profiling run.
    let (profile, max_report) = UsageProfile::profile(&base, trace, workload.clone());
    let max_p95 = max_report.p95_ms().unwrap_or(100.0);
    let goal = goal_factor * max_p95;

    let catalog = base.catalog.clone();
    let mut reports = vec![max_report];

    // 2. + 3. The five remaining policies replay the same workload and
    // share nothing mutable, so they run in parallel: the offline baselines
    // built from the Max run's usage profile (no latency goals, §7.2.1)
    // and the online policies with the goal (§7.2.2). Every policy sees
    // the same seed, so runs stay comparable and the result is identical
    // to the sequential order Max, Peak, Avg, Trace, Util, Auto.
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(goal));
    let offline_cfg = base.clone();
    let online_cfg = RunConfig {
        knobs,
        ..base.clone()
    };
    let runner = FleetRunner::with_available_parallelism();
    reports.extend(runner.map(5, |i| {
        let (mut policy, cfg): (Box<dyn ScalingPolicy>, &RunConfig) = match i {
            0 => (Box::new(peak_policy(&profile, &catalog)), &offline_cfg),
            1 => (Box::new(avg_policy(&profile, &catalog)), &offline_cfg),
            2 => (Box::new(trace_policy(&profile, &catalog)), &offline_cfg),
            3 => (Box::new(UtilPolicy::new()), &online_cfg),
            _ => (Box::new(AutoPolicy::with_knobs(knobs)), &online_cfg),
        };
        ClosedLoop::run(cfg, trace, workload.clone(), policy.as_mut())
    }));

    ComparisonResult {
        goal_ms: goal,
        max_p95_ms: max_p95,
        reports,
    }
}

/// Prints the standard figure layout: per-policy p95 latency and average
/// cost per interval (the paper's bar+line presentation as a table).
pub fn print_comparison(title: &str, goal_desc: &str, result: &ComparisonResult) {
    println!("\n=== {title} ===");
    println!(
        "latency goal: {goal_desc} = {:.0} ms (p95 of Max = {:.1} ms)",
        result.goal_ms, result.max_p95_ms
    );
    let rows: Vec<Vec<String>> = result
        .reports
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.1}", r.p95_ms().unwrap_or(f64::NAN)),
                format!("{:.1}", r.avg_cost_per_interval()),
                format!("{}", r.resizes),
                format!("{:.1}%", r.resize_fraction() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        crate::table::ascii_table(
            &[
                "policy",
                "p95 latency (ms)",
                "cost/interval",
                "resizes",
                "resize %"
            ],
            &rows
        )
    );
    for policy in ["peak", "avg", "trace", "util"] {
        println!(
            "  cost({policy}) / cost(auto) = {:.2}x",
            result.cost_ratio_vs_auto(policy)
        );
    }
    println!("auto rule fires (§4 demand + §6 arbitration, ranked):");
    print!("{}", result.report("auto").rule_histogram());
    println!("auto run observability (metrics registry + event stream):");
    print!("{}", result.report("auto").obs.summary());
}
