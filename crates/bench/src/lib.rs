//! # dasr-bench — experiment harnesses for every figure and table
//!
//! Shared plumbing for the per-figure bench binaries
//! (`benches/fig*.rs`, run via `cargo bench`): the §7 methodology —
//! profile with `Max`, derive the latency goal as a multiple of `Max`'s
//! p95, build the offline baselines from the profile, then run the online
//! policies — plus ASCII table/plot rendering so each bench prints the same
//! rows/series the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod table;

pub use compare::{run_policy_comparison, ComparisonResult, ExperimentScale};
pub use table::{ascii_series, ascii_table};
