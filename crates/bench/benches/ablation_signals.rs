//! Ablation (§3–§4): how much each derived signal contributes.
//!
//! Compares the full Auto policy against variants with individual signals
//! disabled:
//! - **no trends** — the Theil–Sen acceptance threshold is set to 1.0 so no
//!   trend is ever significant (scenarios (b)/(c) and the early-warning
//!   gate vanish);
//! - **no correlation** — the Spearman bottleneck rule is disabled
//!   (`corr_threshold > 1`).
//!
//! The paper's claim is that the *combination* of weakly-predictive signals
//! is what makes the estimator robust.

use dasr_bench::compare::ExperimentScale;
use dasr_bench::table::ascii_table;
use dasr_core::estimator::EstimatorConfig;
use dasr_core::policy::auto::AutoConfig;
use dasr_core::policy::AutoPolicy;
use dasr_core::runner::ClosedLoop;
use dasr_core::{RunConfig, TenantKnobs};
use dasr_telemetry::{LatencyGoal, TelemetryConfig};
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(4, minutes);
    let workload = CpuIoWorkload::new(CpuIoConfig::default());
    let goal = LatencyGoal::P95(200.0);
    let knobs = TenantKnobs::none().with_latency_goal(goal);

    println!("=== Ablation: estimator signals (CPUIO on trace 4, goal 200 ms) ===");
    let mut rows = Vec::new();
    for (label, trend_alpha, corr_threshold) in [
        ("full Auto", 0.70, 0.6),
        ("no trends", 1.0, 0.6),
        ("no correlation", 0.70, 1.1),
        ("neither", 1.0, 1.1),
    ] {
        let cfg = RunConfig {
            knobs,
            telemetry: TelemetryConfig {
                trend_alpha,
                latency_goal: Some(goal),
                ..TelemetryConfig::default()
            },
            prewarm_pages: workload.config().hot_pages,
            ..RunConfig::default()
        };
        let mut policy = AutoPolicy::new(AutoConfig {
            estimator: EstimatorConfig {
                corr_threshold,
                ..EstimatorConfig::default()
            },
            ..AutoConfig::with_knobs(knobs)
        });
        let report = ClosedLoop::run(&cfg, &trace, workload.clone(), &mut policy);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", report.p95_ms().unwrap_or(f64::NAN)),
            format!("{:.1}", report.avg_cost_per_interval()),
            format!("{}", report.resizes),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["variant", "p95 latency (ms)", "cost/interval", "resizes"],
            &rows
        )
    );
    println!(
        "expected: removing signals degrades the latency/cost trade — slower reaction to \
         building pressure (no trends) or missed bottleneck attribution (no correlation)."
    );
}
