//! Figure 13: why Util costs 3.4× Auto on the lock-bound TPC-C workload.
//!
//! Reproduces the drill-down: per-interval container CPU and utilization
//! (both as % of the largest server) and the performance factor for Util
//! (13a) and Auto (13b), plus the wait-category mix (13c — lock waits
//! dominate with >90%, so extra resources cannot improve latency).

use dasr_bench::compare::{run_policy_comparison, ExperimentScale};
use dasr_bench::table::{ascii_series, ascii_table};
use dasr_core::{RunConfig, RunReport};
use dasr_engine::WAIT_CLASSES;
use dasr_workloads::{TpccConfig, TpccWorkload, Trace};

fn drill(report: &RunReport, server_cores: f64, goal_ms: f64, label: &str) {
    println!("\n--- Figure 13 {label} ---");
    let container_cpu_pct: Vec<f64> = report
        .intervals
        .iter()
        .map(|i| i.allocated.cpu_cores / server_cores * 100.0)
        .collect();
    let used_cpu_pct: Vec<f64> = report
        .intervals
        .iter()
        .map(|i| i.used.cpu_cores / server_cores * 100.0)
        .collect();
    let bucket = (report.intervals.len() / 20).max(1);
    println!(
        "{}",
        ascii_series(
            "container Max CPU (% of server)",
            &container_cpu_pct,
            bucket,
            40
        )
    );
    println!(
        "{}",
        ascii_series("CPU utilization (% of server)", &used_cpu_pct, bucket, 40)
    );

    let pf: Vec<f64> = report
        .intervals
        .iter()
        .filter_map(|i| i.performance_factor(goal_ms))
        .collect();
    let mean_pf = pf.iter().sum::<f64>() / pf.len().max(1) as f64;
    let max_container = container_cpu_pct.iter().copied().fold(0.0, f64::max);
    println!(
        "mean performance factor {mean_pf:.1} (paper: close to zero for both policies); \
         peak container CPU {max_container:.0}% of server"
    );
}

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(4, minutes);
    let base = RunConfig::default();
    // A single warehouse and a mostly-cached database: every Payment
    // serializes on one hot row, so during bursts the workload is purely
    // lock-bound — the application-level contention behind Figure 13.
    let workload = TpccWorkload::new(TpccConfig {
        warehouses: 1,
        db_pages: 262_144,  // 2 GB
        hot_pages: 131_072, // 1 GB
        hot_prob: 0.97,
        ..TpccConfig::default()
    });
    let r = run_policy_comparison(&trace, workload, 1.25, &base);
    let server_cores = base.catalog.largest().resources.cpu_cores;

    drill(
        r.report("util"),
        server_cores,
        r.goal_ms,
        "(a): Util container sizes",
    );
    drill(
        r.report("auto"),
        server_cores,
        r.goal_ms,
        "(b): Auto container sizes",
    );
    println!(
        "\npaper: Util overshoots to ~70% of the server's CPU while utilization stays ~10%; \
         Auto stays in the 10-20% range."
    );

    // 13(c): wait-category mix during busy, resource-rich intervals of the
    // Util run — with ample resources the physical waits vanish and the
    // application locks are what remains.
    println!("\n--- Figure 13(c): percentage waits per category (busy intervals, Util run) ---");
    let auto = r.report("util");
    let busy: Vec<_> = auto
        .intervals
        .iter()
        .filter(|i| i.completed > 1_000 && i.rung >= 4)
        .collect();
    let mut rows = Vec::new();
    for class in WAIT_CLASSES {
        let mean: f64 =
            busy.iter().map(|i| i.wait_pct[class.index()]).sum::<f64>() / busy.len().max(1) as f64;
        rows.push(vec![class.to_string(), format!("{mean:.1}%")]);
    }
    println!("{}", ascii_table(&["wait class", "share of waits"], &rows));
    let lock_share: f64 = busy
        .iter()
        .map(|i| i.wait_pct[dasr_engine::WaitClass::Lock.index()])
        .sum::<f64>()
        / busy.len().max(1) as f64;
    println!("paper: lock waits >90% of all waits | measured {lock_share:.0}%");
}
