//! dasr-store write and read throughput.
//!
//! The store's job is to keep up with a fleet sweep: `run_fleet_summary`
//! streams events through a `StoreSink` while tenants execute, so append
//! cost is on the fleet's critical path. The acceptance bar CI gates on
//! is **< 5 µs per appended record** including framing, batching and the
//! (amortized) flush — measured here as `store_append_1k`, one iteration
//! = 1000 event appends + one explicit flush.
//!
//! Read-side benches cover the two query shapes the paper's analyses
//! use: a time-windowed scan (sparse index pruning) and a whole-run
//! rule-fire aggregation.
//!
//! With `DASR_BENCH_JSON` set, the vendored criterion shim appends one
//! `{"bench": …, "ns_per_iter": …}` line per benchmark — CI publishes
//! them as `BENCH_store.json` and gates the append cost.

use criterion::{black_box, Criterion};
use dasr_core::obs::{EventKind, RunEvent};
use dasr_store::{RecordPayload, RunMeta, Store, StoredRecord, WriterConfig};

/// Records per append iteration.
const APPENDS: u64 = 1_000;
/// Records in the pre-populated query store.
const QUERY_RECORDS: u64 = 100_000;

fn event(interval: u64) -> RecordPayload {
    RecordPayload::Event(RunEvent {
        tenant: Some(interval % 64),
        interval: interval % 1_440,
        kind: if interval.is_multiple_of(7) {
            EventKind::ResizeIssued {
                from_rung: (interval % 5) as u8,
                to_rung: (interval % 5) as u8 + 1,
            }
        } else if interval.is_multiple_of(11) {
            EventKind::BudgetThrottle {
                headroom_pct: (interval % 100) as f64,
            }
        } else {
            EventKind::IntervalStart
        },
    })
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dasr-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_store(c: &mut Criterion) {
    // -- Write path ------------------------------------------------------
    let dir = bench_dir("append");
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open");
    let run = store.begin_run(RunMeta::new("bench", "synthetic", "none", 0));
    let mut at = 0u64;
    c.bench_function("store_append_1k", |b| {
        b.iter(|| {
            for _ in 0..APPENDS {
                store.append(run, event(at)).expect("append");
                at += 1;
            }
            store.flush().expect("flush");
            black_box(at)
        })
    });
    let appended = at;
    store.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);

    // Encode alone, for the share framing takes of the append cost.
    let recs: Vec<StoredRecord> = (0..APPENDS)
        .map(|i| StoredRecord {
            run,
            payload: event(i),
        })
        .collect();
    let mut buf = Vec::with_capacity(64 * APPENDS as usize);
    c.bench_function("store_encode_1k", |b| {
        b.iter(|| {
            buf.clear();
            for r in &recs {
                r.encode_into(&mut buf);
            }
            black_box(buf.len())
        })
    });

    // -- Read path -------------------------------------------------------
    let dir = bench_dir("query");
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open");
    let run = store.begin_run(RunMeta::new("bench", "synthetic", "none", 0));
    for i in 0..QUERY_RECORDS {
        store.append(run, event(i)).expect("append");
    }
    store.end_run(run).expect("commit");

    // One-hour window out of a synthetic day: the sparse index prunes
    // every batch whose interval box misses [540, 600).
    c.bench_function("store_scan_1h_window_100k", |b| {
        b.iter(|| {
            let hits = store.scan_range(540..600).expect("scan");
            black_box(hits.len())
        })
    });

    c.bench_function("store_fire_counts_100k", |b| {
        b.iter(|| {
            let counts = store.fire_counts(Some(run), 0..u64::MAX).expect("counts");
            black_box(counts.total_fires())
        })
    });

    let stats = store.stats().expect("stats");
    println!(
        "appended {appended} records in the write bench; query store: \
         {} records, {} batches, {:.1} KiB on disk ({:.1} B/record)",
        stats.records,
        stats.batches,
        stats.bytes as f64 / 1024.0,
        stats.bytes as f64 / stats.records as f64
    );
    store.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut c = Criterion::default();
    bench_store(&mut c);
    if let Some(m) = c
        .measurements()
        .iter()
        .find(|m| m.id.contains("store_append_1k"))
    {
        let per_record_us = m.ns_per_iter / APPENDS as f64 / 1_000.0;
        println!(
            "append cost: {per_record_us:.3} µs/record \
             (acceptance bar <5 µs; CI gates BENCH_store.json on this)"
        );
    }
    c.emit_json();
}
