//! dasr-store write and read throughput.
//!
//! The store's job is to keep up with a fleet sweep: `run_fleet_summary`
//! streams events through a `StoreSink` while tenants execute, so append
//! cost is on the fleet's critical path. The acceptance bar CI gates on
//! is **< 5 µs per appended record** including framing, batching and the
//! (amortized) flush — measured here as `store_append_1k`, one iteration
//! = 1000 event appends + one explicit flush.
//!
//! Read-side benches cover the two query shapes the paper's analyses
//! use — a time-windowed scan (sparse index pruning) and a whole-run
//! rule-fire aggregation — plus the streaming cursor over the same
//! window (`store_scan_stream_100k`, no result materialization). All
//! run against the default (v2) format; CI gates the collected scan at
//! ≥2× and `store_fire_counts_100k` at ≥5× the v1-era baselines
//! recorded in `BENCH_store.json`.
//!
//! `store_compress_bytes_per_tenant_day` is a size, not a latency: a
//! small fleet-day is streamed through a `StoreSink` exactly like
//! `examples/store_query.rs` and the on-disk bytes are divided by the
//! tenant count. The value lands in the JSON's `ns_per_iter` field
//! (the shim has only one value slot); the bench name carries the
//! unit. CI gates it at ≤ 1.7 KiB/tenant-day.
//!
//! With `DASR_BENCH_JSON` set, the vendored criterion shim appends one
//! `{"bench": …, "ns_per_iter": …}` line per benchmark — CI publishes
//! them as `BENCH_store.json` and gates the rows above.

use criterion::{black_box, Criterion};
use dasr_core::obs::{EventKind, RunEvent};
use dasr_core::policy::AutoPolicy;
use dasr_core::{tenant_seed, FleetRunner, RunConfig, TenantKnobs, TenantSpec};
use dasr_store::codec::BatchEncoder;
use dasr_store::{Query, RecordPayload, RunMeta, Store, StoredRecord, WriterConfig};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use std::io::Write as _;

/// Records per append iteration.
const APPENDS: u64 = 1_000;
/// Records in the pre-populated query store.
const QUERY_RECORDS: u64 = 100_000;
/// Fleet size for the on-disk compression measurement.
const COMPRESS_TENANTS: usize = 8;
/// One day of 1-minute billing intervals.
const MINUTES: usize = 1_440;

fn event(interval: u64) -> RecordPayload {
    RecordPayload::Event(RunEvent {
        tenant: Some(interval % 64),
        interval: interval % 1_440,
        kind: if interval.is_multiple_of(7) {
            EventKind::ResizeIssued {
                from_rung: (interval % 5) as u8,
                to_rung: (interval % 5) as u8 + 1,
            }
        } else if interval.is_multiple_of(11) {
            EventKind::BudgetThrottle {
                headroom_pct: (interval % 100) as f64,
            }
        } else {
            EventKind::IntervalStart
        },
    })
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dasr-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_store(c: &mut Criterion) {
    // -- Write path ------------------------------------------------------
    let dir = bench_dir("append");
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open");
    let run = store.begin_run(RunMeta::new("bench", "synthetic", "none", 0));
    let mut at = 0u64;
    c.bench_function("store_append_1k", |b| {
        b.iter(|| {
            for _ in 0..APPENDS {
                store.append(run, event(at)).expect("append");
                at += 1;
            }
            store.flush().expect("flush");
            black_box(at)
        })
    });
    let appended = at;
    store.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);

    // Encode alone, for the share framing takes of the append cost —
    // the v2 batch codec (delta heads, varints, float dictionary), one
    // batch per iteration, matching what the writer does per flush.
    let recs: Vec<StoredRecord> = (0..APPENDS)
        .map(|i| StoredRecord {
            run,
            payload: event(i),
        })
        .collect();
    let mut enc = BatchEncoder::new();
    let mut buf = Vec::with_capacity(64 * APPENDS as usize);
    c.bench_function("store_encode_1k", |b| {
        b.iter(|| {
            buf.clear();
            enc.reset();
            for r in &recs {
                enc.encode_into(r, &mut buf);
            }
            black_box(buf.len())
        })
    });

    // -- Read path -------------------------------------------------------
    let dir = bench_dir("query");
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open");
    let run = store.begin_run(RunMeta::new("bench", "synthetic", "none", 0));
    for i in 0..QUERY_RECORDS {
        store.append(run, event(i)).expect("append");
    }
    store.end_run(run).expect("commit");

    // One-hour window out of a synthetic day: the sparse index prunes
    // every batch whose interval box misses [540, 600).
    c.bench_function("store_scan_1h_window_100k", |b| {
        b.iter(|| {
            let hits = store.scan_range(540..600).expect("scan");
            black_box(hits.len())
        })
    });

    // The same window, streamed: no result Vec, records visited one at
    // a time out of the cursor's reusable batch buffer.
    c.bench_function("store_scan_stream_100k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            let cur = store
                .cursor(Query {
                    intervals: Some(540..600),
                    ..Query::default()
                })
                .expect("cursor");
            for rec in cur {
                rec.expect("stream");
                n += 1;
            }
            black_box(n)
        })
    });

    c.bench_function("store_fire_counts_100k", |b| {
        b.iter(|| {
            let counts = store.fire_counts(Some(run), 0..u64::MAX).expect("counts");
            black_box(counts.total_fires())
        })
    });

    let stats = store.stats().expect("stats");
    println!(
        "appended {appended} records in the write bench; query store: \
         {} records, {} batches, {:.1} KiB on disk ({:.1} B/record)",
        stats.records,
        stats.batches,
        stats.bytes as f64 / 1024.0,
        stats.bytes as f64 / stats.records as f64
    );
    store.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `examples/store_query.rs` fleet, shrunk to [`COMPRESS_TENANTS`]:
/// every third tenant on a tight budget, diurnal demand with a 09:00
/// peak, notable events streamed through a `StoreSink` in summary mode.
/// The interesting number is bytes on disk per tenant-day.
fn compress_fleet() -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..COMPRESS_TENANTS)
        .map(|i| {
            let budget = if i.is_multiple_of(3) {
                7.05 * MINUTES as f64
            } else {
                60.0 * MINUTES as f64
            };
            let demand: Vec<f64> = (0..MINUTES)
                .map(|m| {
                    let base = 4.0 + ((i + m) % 5) as f64 * 2.0;
                    let peak = if (540..600).contains(&m) { 150.0 } else { 0.0 };
                    base + peak
                })
                .collect();
            TenantSpec {
                cfg: RunConfig {
                    knobs: TenantKnobs::none()
                        .with_budget(budget)
                        .with_latency_goal(LatencyGoal::P95(150.0 + (i % 4) as f64 * 100.0)),
                    seed: tenant_seed(0xDA7A, i as u64),
                    prewarm_pages: 1_000,
                    ..RunConfig::default()
                },
                trace: Trace::new("diurnal-day", demand),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

/// Streams one fleet-day into a fresh store and returns bytes on disk
/// per tenant-day (including batch framing and index sidecars' share of
/// nothing — sidecars are separate files; this counts segment bytes,
/// the archival cost).
fn measure_compression() -> f64 {
    let dir = bench_dir("compress");
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open");
    let run = store.begin_run(
        RunMeta::new("auto", "cpuio", "diurnal-day", 0xDA7A)
            .fleet(COMPRESS_TENANTS as u64, MINUTES as u64),
    );
    let mut sink = store.event_sink(run).expect("sink");
    let tenants = compress_fleet();
    FleetRunner::default().run_fleet_summary(
        &tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)),
        &mut sink,
    );
    assert!(sink.error().is_none(), "sink error: {:?}", sink.error());
    store.end_run(run).expect("commit");
    let stats = store.stats().expect("stats");
    store.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
    stats.bytes as f64 / COMPRESS_TENANTS as f64
}

/// Appends extra non-latency rows (sizes) to `DASR_BENCH_JSON` in the
/// same line format the criterion shim uses.
fn emit_extra_json(lines: &[(&str, f64)]) {
    let Ok(path) = std::env::var("DASR_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    for (bench, value) in lines {
        let _ = writeln!(
            file,
            "{{\"bench\":\"{bench}\",\"ns_per_iter\":{value:.1},\"iters\":1}}"
        );
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_store(&mut c);
    if let Some(m) = c
        .measurements()
        .iter()
        .find(|m| m.id.contains("store_append_1k"))
    {
        let per_record_us = m.ns_per_iter / APPENDS as f64 / 1_000.0;
        println!(
            "append cost: {per_record_us:.3} µs/record \
             (acceptance bar <5 µs; CI gates BENCH_store.json on this)"
        );
    }
    c.emit_json();

    let bytes_per_tenant_day = measure_compression();
    println!(
        "on-disk cost: {:.2} KiB per tenant-day of notable events \
         ({COMPRESS_TENANTS} tenants x {MINUTES} min; gate <= 1.7 KiB)",
        bytes_per_tenant_day / 1024.0
    );
    emit_extra_json(&[("store_compress_bytes_per_tenant_day", bytes_per_tenant_day)]);
}
