//! Figure 9: CPUIO on trace 2 (one long burst) under tight (1.25× Max) and
//! loose (5× Max) latency goals.
//!
//! Paper results (cost ratios vs Auto): goal 1.25× — Peak 2.75×, Util 1.8×,
//! Trace 1.28×; goal 5× — Peak ≈8×, Avg 2×, Util 1.8×. Headline: looser
//! goals let Auto cut costs further while staying within the goal.

use dasr_bench::compare::{print_comparison, run_policy_comparison, ExperimentScale};
use dasr_core::RunConfig;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(2, minutes);
    let base = RunConfig::default();
    for (factor, paper) in [
        (1.25, [("peak", 2.75), ("trace", 1.28), ("util", 1.8)]),
        (5.0, [("peak", 8.0), ("avg", 2.0), ("util", 1.8)]),
    ] {
        let r = run_policy_comparison(
            &trace,
            CpuIoWorkload::new(CpuIoConfig::default()),
            factor,
            &base,
        );
        print_comparison(
            &format!("Figure 9: CPUIO on trace 2, goal {factor}x Max ({minutes} min)"),
            &format!("{factor} x p95(Max)"),
            &r,
        );
        for (policy, expected) in paper {
            println!(
                "  paper cost({policy})/cost(auto) = {expected:.2}x | measured {:.2}x",
                r.cost_ratio_vs_auto(policy)
            );
        }
    }
}
