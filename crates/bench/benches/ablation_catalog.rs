//! Ablation (Figure 1 / §2.1): lockstep vs per-dimension container scaling.
//!
//! "Workloads having demand in one resource can benefit if containers are
//! scaled independently in each dimension." A CPU-dominated workload on the
//! lockstep catalog must buy memory/IOPS it does not need; on the
//! per-dimension catalog Auto scales only the CPU axis.

use dasr_bench::compare::ExperimentScale;
use dasr_bench::table::ascii_table;
use dasr_containers::Catalog;
use dasr_core::policy::AutoPolicy;
use dasr_core::runner::ClosedLoop;
use dasr_core::{RunConfig, TenantKnobs};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(2, minutes);
    let workload = CpuIoWorkload::new(CpuIoConfig::cpu_heavy());
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(200.0));

    println!("=== Ablation: container catalog shape (CPU-heavy CPUIO on trace 2) ===");
    let mut rows = Vec::new();
    for (label, catalog) in [
        ("lockstep (S/M/L…)", Catalog::azure_like()),
        (
            "per-dimension (adds MC/LC/MD/LD…)",
            Catalog::azure_like_per_dimension(),
        ),
    ] {
        let cfg = RunConfig {
            catalog,
            knobs,
            prewarm_pages: workload.config().hot_pages,
            ..RunConfig::default()
        };
        let mut policy = AutoPolicy::with_knobs(knobs);
        let report = ClosedLoop::run(&cfg, &trace, workload.clone(), &mut policy);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", report.p95_ms().unwrap_or(f64::NAN)),
            format!("{:.1}", report.avg_cost_per_interval()),
            format!("{}", report.resizes),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &["catalog", "p95 latency (ms)", "cost/interval", "resizes"],
            &rows
        )
    );
    println!(
        "expected: the per-dimension catalog meets the same goal at equal or lower cost, \
         because only the CPU axis is scaled for a CPU-bound workload (Figure 1)."
    );
}
