//! Criterion micro-benchmarks for the robust-statistics substrate:
//! Theil–Sen vs OLS (the paper's chosen vs rejected trend estimator),
//! Spearman, medians and the P² streaming quantile.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dasr_stats::{median, ols_fit, spearman, P2Quantile, TheilSen};

fn series(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = x
        .iter()
        .map(|v| 2.0 * v + ((v * 0.7).sin() * 50.0))
        .collect();
    (x, y)
}

fn bench_trends(c: &mut Criterion) {
    let mut g = c.benchmark_group("trend_estimators");
    for n in [10usize, 30, 60] {
        let (x, y) = series(n);
        g.bench_function(format!("theil_sen_n{n}"), |b| {
            let est = TheilSen::new();
            b.iter(|| black_box(est.trend(black_box(&x), black_box(&y))))
        });
        g.bench_function(format!("ols_n{n}"), |b| {
            b.iter(|| black_box(ols_fit(black_box(&x), black_box(&y))))
        });
    }
    g.finish();
}

fn bench_correlation_and_aggregates(c: &mut Criterion) {
    let (x, y) = series(60);
    c.bench_function("spearman_n60", |b| {
        b.iter(|| black_box(spearman(black_box(&x), black_box(&y))))
    });
    c.bench_function("median_n60", |b| {
        b.iter(|| black_box(median(black_box(&y))))
    });
    c.bench_function("p2_quantile_update_x1000", |b| {
        b.iter(|| {
            let mut p = P2Quantile::new(0.95);
            for &v in &y {
                for k in 0..17 {
                    p.update(v + k as f64);
                }
            }
            black_box(p.value())
        })
    });
}

criterion_group!(benches, bench_trends, bench_correlation_and_aggregates);
criterion_main!(benches);
