//! Figure 12: DS2 on trace 1 (steady demand), goal 1.25× Max.
//!
//! Paper: even for a steady workload — the best case for a static container
//! — Peak costs 1.5×, Avg 1.2× and Util 1.5× what Auto costs.

use dasr_bench::compare::{print_comparison, run_policy_comparison, ExperimentScale};
use dasr_core::RunConfig;
use dasr_workloads::{Ds2Config, Ds2Workload, Trace};

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(1, minutes);
    let base = RunConfig::default();
    let r = run_policy_comparison(&trace, Ds2Workload::new(Ds2Config::default()), 1.25, &base);
    print_comparison(
        &format!("Figure 12: DS2 on trace 1, goal 1.25x Max ({minutes} min)"),
        "1.25 x p95(Max)",
        &r,
    );
    for (policy, expected) in [("peak", 1.5), ("avg", 1.2), ("util", 1.5)] {
        println!(
            "  paper cost({policy})/cost(auto) = {expected:.2}x | measured {:.2}x",
            r.cost_ratio_vs_auto(policy)
        );
    }
}
