//! Figure 4: resource wait time as a function of utilization across the
//! fleet — an increasing trend with a very wide band, i.e. each signal is
//! only weakly predictive of demand.

use dasr_bench::table::ascii_table;
use dasr_containers::ResourceKind;
use dasr_fleet::WaitModel;
use dasr_stats::{percentile, spearman};

fn main() {
    let n = if std::env::var("DASR_FULL").is_ok() {
        200_000
    } else {
        50_000
    };
    for (kind, label) in [
        (
            ResourceKind::Cpu,
            "Figure 4(a): CPU wait ms vs % utilization",
        ),
        (
            ResourceKind::DiskIo,
            "Figure 4(b): Disk wait ms vs % utilization",
        ),
    ] {
        let obs = WaitModel::new(kind, 42).generate(n);
        println!("\n=== {label} ({n} tenant-intervals) ===");
        let mut rows = Vec::new();
        for decile in 0..10 {
            let lo = decile as f64 * 10.0;
            let hi = lo + 10.0;
            let waits: Vec<f64> = obs
                .iter()
                .filter(|o| o.util_pct >= lo && o.util_pct < hi)
                .map(|o| o.wait_ms)
                .collect();
            if waits.is_empty() {
                continue;
            }
            let p10 = percentile(&waits, 10.0).unwrap();
            let p50 = percentile(&waits, 50.0).unwrap();
            let p90 = percentile(&waits, 90.0).unwrap();
            rows.push(vec![
                format!("{lo:.0}-{hi:.0}%"),
                format!("{p10:.0}"),
                format!("{p50:.0}"),
                format!("{p90:.0}"),
                format!("{:.1}", (p90 / p10.max(1.0)).log10()),
            ]);
        }
        println!(
            "{}",
            ascii_table(
                &[
                    "utilization",
                    "p10 wait ms",
                    "median wait ms",
                    "p90 wait ms",
                    "band (decades)"
                ],
                &rows
            )
        );
        let util: Vec<f64> = obs.iter().map(|o| o.util_pct).collect();
        let wait: Vec<f64> = obs.iter().map(|o| o.wait_ms).collect();
        let rho = spearman(&util, &wait).unwrap_or(f64::NAN);
        println!("Spearman ρ(utilization, wait) = {rho:.2} — paper: increasing trend, weak correlation (wide band)");
        let outlier_high = obs
            .iter()
            .filter(|o| o.util_pct < 30.0 && o.wait_ms > 1_000_000.0)
            .count();
        let outlier_low = obs
            .iter()
            .filter(|o| o.util_pct > 70.0 && o.wait_ms < 1_000.0)
            .count();
        println!(
            "waits >1000s at <30% utilization: {outlier_high}; waits <1s at >70% utilization: {outlier_low} \
             — paper: both regions populated, so neither signal suffices alone"
        );
    }
}
