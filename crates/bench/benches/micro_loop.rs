//! Trait-seam dispatch overhead on the closed loop.
//!
//! The seam refactor made `ClosedLoop` generic over
//! `TelemetrySource`/`ResizeActuator` with the engine plugged in as
//! `SimulatorSource`. Dispatch is static (monomorphized), so the seam
//! must cost nothing measurable next to the loop body it wraps — the
//! acceptance bar is **< 2%** against `OracleLoop`, the frozen
//! pre-refactor loop that calls the engine directly. A replay pass over a
//! recorded run is benched alongside (it skips the simulator entirely, so
//! it shows the loop-plus-telemetry floor).
//!
//! With `DASR_BENCH_JSON` set, the vendored criterion shim appends one
//! `{"bench": …, "ns_per_iter": …}` line per benchmark — CI publishes
//! them as `BENCH_loop.json` and gates the overhead.

use criterion::{black_box, Criterion};
use dasr_core::{
    record_run, replay, AutoPolicy, ClosedLoop, OracleLoop, RunConfig, RunRecording, TenantKnobs,
};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

/// Minutes per loop run. Long enough that per-run setup (engine, policy)
/// amortizes out and per-interval work — the thing the seam sits on —
/// dominates; `engine_1000_requests_mixed`-style arrival volume per
/// interval comes from the trace's ~17 rps.
const MINUTES: usize = 60;

fn cfg() -> RunConfig {
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(60.0 * MINUTES as f64)
            .with_latency_goal(LatencyGoal::P95(150.0)),
        seed: 0x10_0F,
        prewarm_pages: 2_000,
        ..RunConfig::default()
    }
}

fn trace() -> Trace {
    let demand: Vec<f64> = (0..MINUTES)
        .map(|m| 10.0 + (m % 5) as f64 * 4.0 + if m % 11 == 6 { 15.0 } else { 0.0 })
        .collect();
    Trace::new("loop-bench", demand)
}

fn workload() -> CpuIoWorkload {
    CpuIoWorkload::new(CpuIoConfig::small())
}

fn bench_loop(c: &mut Criterion) {
    let cfg = cfg();
    let trace = trace();

    // The pre-seam loop: direct engine calls, no trait in the path.
    c.bench_function("loop_direct_60min", |b| {
        b.iter(|| {
            let mut policy = AutoPolicy::with_knobs(cfg.knobs);
            let report = OracleLoop::run(&cfg, &trace, workload(), &mut policy);
            black_box(report.resizes)
        })
    });

    // The same run through the generic loop + SimulatorSource.
    c.bench_function("loop_seam_60min", |b| {
        b.iter(|| {
            let mut policy = AutoPolicy::with_knobs(cfg.knobs);
            let report = ClosedLoop::run(&cfg, &trace, workload(), &mut policy);
            black_box(report.resizes)
        })
    });

    // Replay floor: the loop + telemetry manager over a recorded run,
    // no simulation.
    let mut rec_policy = AutoPolicy::with_knobs(cfg.knobs);
    let (_, recording) = record_run(&cfg, &trace, workload(), &mut rec_policy);
    c.bench_function("loop_replay_60min", |b| {
        b.iter(|| {
            let mut policy = AutoPolicy::with_knobs(cfg.knobs);
            let report = replay(&cfg, recording.clone(), &mut policy);
            black_box(report.resizes)
        })
    });

    // Recording serialization round trip, for the record-to-disk budget.
    let jsonl = recording.to_jsonl();
    c.bench_function("recording_jsonl_roundtrip_60", |b| {
        b.iter(|| {
            let parsed = RunRecording::from_jsonl(&jsonl).expect("recording parses");
            black_box(parsed.records.len())
        })
    });
}

fn main() {
    let mut c = Criterion::default();
    bench_loop(&mut c);
    let ns = |needle: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.ns_per_iter)
    };
    if let (Some(direct), Some(seam)) = (ns("loop_direct"), ns("loop_seam")) {
        if direct > 0.0 {
            let overhead = (seam - direct) / direct * 100.0;
            println!(
                "trait-seam dispatch overhead on the closed loop: {overhead:+.2}% \
                 (direct {:.0} ns → seam {:.0} ns per {MINUTES}-minute run; \
                 acceptance bar <2%)",
                direct, seam
            );
        }
    }
    if let (Some(seam), Some(rep)) = (ns("loop_seam"), ns("loop_replay")) {
        if seam > 0.0 {
            println!(
                "replay runs the recorded loop at {:.1}% of the simulated cost",
                rep / seam * 100.0
            );
        }
    }
    c.emit_json();
}
