//! Per-interval signal-set computation: optimized (SoA ring window +
//! scratch-buffer statistics) vs. the allocating baseline this repo shipped
//! with (VecDeque window, freshly collected series vectors, full-sort
//! medians, per-call rank/slope buffers).
//!
//! The baseline below is a faithful re-implementation of the old hot path:
//! it computes the same medians, trends and correlations over the same
//! windows, minus the (cheap) categorization and struct assembly the real
//! manager also does — so the measured speedup is, if anything,
//! understated.

use criterion::{black_box, Criterion};
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_engine::WaitClass;
use dasr_stats::{Trend, TrendDirection};
use dasr_telemetry::{LatencyGoal, TelemetryConfig, TelemetryManager, TelemetrySample};
use std::collections::VecDeque;

fn sample(i: u64) -> TelemetrySample {
    let mut util_pct = [0.0; 4];
    util_pct[ResourceKind::Cpu.index()] = 40.0 + (i % 17) as f64;
    util_pct[ResourceKind::Memory.index()] = 85.0;
    util_pct[ResourceKind::DiskIo.index()] = 20.0 + (i % 7) as f64;
    util_pct[ResourceKind::LogIo.index()] = 5.0;
    let mut wait_ms = [0.0; 7];
    wait_ms[WaitClass::Cpu.index()] = 500.0 + (i % 13) as f64 * 100.0;
    wait_ms[WaitClass::DiskIo.index()] = 200.0;
    wait_ms[WaitClass::Lock.index()] = 100.0;
    TelemetrySample {
        interval: i,
        util_pct,
        wait_ms,
        latency_ms: Some(80.0 + (i % 11) as f64),
        avg_latency_ms: Some(60.0),
        completed: 5_000,
        arrivals: 5_000,
        rejected: 0,
        mem_used_mb: 3_000.0,
        mem_capacity_mb: 3_482.0,
        disk_reads_per_sec: 50.0,
    }
}

/// The old AoS window: VecDeque of samples, every series a fresh Vec.
struct NaiveWindow {
    cap: usize,
    samples: VecDeque<TelemetrySample>,
}

impl NaiveWindow {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            samples: VecDeque::with_capacity(cap),
        }
    }

    fn push(&mut self, sample: TelemetrySample) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    fn recent(&self, n: usize) -> impl Iterator<Item = &TelemetrySample> {
        let skip = self.samples.len().saturating_sub(n);
        self.samples.iter().skip(skip)
    }

    fn util_series(&self, kind: ResourceKind, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.util(kind)).collect()
    }

    fn wait_per_request_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n)
            .map(|s| s.wait(class) / (s.completed.max(1) as f64))
            .collect()
    }

    fn wait_pct_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.wait_pct(class)).collect()
    }

    fn latency_series(&self, n: usize) -> Vec<f64> {
        self.recent(n)
            .map(|s| s.latency_ms.unwrap_or(f64::NAN))
            .collect()
    }
}

// ---- The seed's statistics kernels, verbatim allocation patterns ----

/// Seed `median`: fresh filtered copy + full (stable-ish) sort per call.
fn naive_median(values: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = (v.len() - 1) as f64 * 0.5;
    let (lo, hi) = (idx.floor() as usize, idx.ceil() as usize);
    Some((v[lo] + v[hi]) / 2.0)
}

/// Seed `average_ranks`: fresh `Vec<usize>` order (stable sort) + rank vec.
fn naive_average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len())
        .filter(|&i| values[i].is_finite())
        .collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut ranks = vec![f64::NAN; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && values[order[j]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

/// Seed `pearson`: filter into a pts vec, unzip, then the moment sums.
fn naive_pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = x
        .iter()
        .zip(y.iter())
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for (a, b) in xs.iter().zip(ys.iter()) {
        let (dx, dy) = (a - mx, b - my);
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Seed `spearman`: unzip copy + two allocating rank transforms.
fn naive_spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    let (xs, ys): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y.iter())
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .unzip();
    if xs.len() < 2 {
        return None;
    }
    naive_pearson(&naive_average_ranks(&xs), &naive_average_ranks(&ys))
}

/// Seed `TheilSen::trend_indexed`: materialize `xs = 0..n`, collect a pts
/// vec, push every pairwise slope into a fresh vec, full-sort median.
fn naive_trend_indexed(alpha: f64, y: &[f64]) -> Trend {
    let xs: Vec<f64> = (0..y.len()).map(|i| i as f64).collect();
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(y.iter())
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .collect();
    if pts.len() < 2 {
        return Trend::None;
    }
    let mut slopes = Vec::with_capacity(pts.len() * (pts.len() - 1) / 2);
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let dx = pts[j].0 - pts[i].0;
            if dx != 0.0 {
                slopes.push((pts[j].1 - pts[i].1) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return Trend::None;
    }
    let (mut pos, mut neg) = (0usize, 0usize);
    for &m in &slopes {
        if m > 1e-12 {
            pos += 1;
        } else if m < -1e-12 {
            neg += 1;
        }
    }
    let total = slopes.len() as f64;
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let slope = slopes[(slopes.len() - 1) / 2];
    let (dominant, direction) = if pos >= neg {
        (pos, TrendDirection::Increasing)
    } else {
        (neg, TrendDirection::Decreasing)
    };
    let agreement = dominant as f64 / total;
    if agreement >= alpha {
        Trend::Significant {
            direction,
            slope,
            agreement,
        }
    } else {
        Trend::None
    }
}

/// One interval of the old signal pipeline: same statistics over the same
/// windows as `TelemetryManager::signals`, with the seed's allocation
/// patterns and sort-based kernels.
fn naive_signals(window: &NaiveWindow, cfg: &TelemetryConfig) -> f64 {
    let latency_series = window.latency_series(cfg.corr_window);
    let mut acc = 0.0;
    for kind in RESOURCE_KINDS {
        let class = match kind {
            ResourceKind::Cpu => WaitClass::Cpu,
            ResourceKind::Memory => WaitClass::Memory,
            ResourceKind::DiskIo => WaitClass::DiskIo,
            ResourceKind::LogIo => WaitClass::LogIo,
        };
        acc += naive_median(&window.util_series(kind, cfg.smoothing_window)).unwrap_or(0.0);
        acc += naive_median(&window.wait_per_request_series(class, cfg.smoothing_window))
            .unwrap_or(0.0);
        acc += naive_median(&window.wait_pct_series(class, cfg.smoothing_window)).unwrap_or(0.0);

        let util_t = window.util_series(kind, cfg.trend_window);
        let trend = naive_trend_indexed(cfg.trend_alpha, &util_t);
        acc += naive_median(&util_t).unwrap_or(0.0) + trend.is_increasing() as u64 as f64;
        let wait_t = window.wait_per_request_series(class, cfg.trend_window);
        let trend = naive_trend_indexed(cfg.trend_alpha, &wait_t);
        acc += naive_median(&wait_t).unwrap_or(0.0) + trend.is_increasing() as u64 as f64;

        let wait_c = window.wait_per_request_series(class, cfg.corr_window);
        acc += naive_spearman(&latency_series, &wait_c).unwrap_or(0.0);
        let util_c = window.util_series(kind, cfg.corr_window);
        acc += naive_spearman(&latency_series, &util_c).unwrap_or(0.0);
    }
    acc += naive_median(&window.latency_series(cfg.smoothing_window)).unwrap_or(0.0);
    let lat_t = window.latency_series(cfg.trend_window);
    acc += naive_trend_indexed(cfg.trend_alpha, &lat_t).is_increasing() as u64 as f64;
    for class in [WaitClass::Lock, WaitClass::Latch, WaitClass::Other] {
        acc += naive_median(&window.wait_pct_series(class, cfg.smoothing_window)).unwrap_or(0.0);
    }
    acc
}

fn telemetry_config() -> TelemetryConfig {
    TelemetryConfig {
        latency_goal: Some(LatencyGoal::P95(100.0)),
        ..TelemetryConfig::default()
    }
}

fn bench_signals(c: &mut Criterion) {
    let mut group = c.benchmark_group("signals");

    group.bench_function("optimized_observe_plus_signals", |b| {
        let mut tm = TelemetryManager::new(telemetry_config());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tm.observe(sample(i)))
        })
    });

    group.bench_function("baseline_alloc_observe_plus_signals", |b| {
        let cfg = telemetry_config();
        let mut window = NaiveWindow::new(cfg.window_cap);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            window.push(sample(i));
            black_box(naive_signals(&window, &cfg))
        })
    });

    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_signals(&mut c);
    let ns = |needle: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.ns_per_iter)
    };
    if let (Some(opt), Some(base)) = (ns("optimized"), ns("baseline")) {
        if opt > 0.0 {
            println!(
                "signal-set speedup: {:.2}x (baseline {:.0} ns → optimized {:.0} ns)",
                base / opt,
                base,
                opt
            );
        }
    }
    c.emit_json();
}
