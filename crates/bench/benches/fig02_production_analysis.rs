//! Figure 2 + the §4 step-size statistic: change-event analysis over a
//! synthetic production fleet.
//!
//! Reproduces:
//! - Fig 2(a) — CDF of the Inter-Event Interval (paper: 86% of container
//!   changes happen within 60 minutes of the previous change);
//! - Fig 2(b) — distribution of change events per day (paper: >78% of
//!   tenants average ≥1/day, >52% ≥6/day, 28% >24/day);
//! - §4 — 90% of changes are 1 rung, ≤2 rungs cover 98%.

use dasr_bench::table::ascii_table;
use dasr_containers::Catalog;
use dasr_fleet::{ChangeAnalysis, TenantPopulation};

fn main() {
    let tenants = if std::env::var("DASR_FULL").is_ok() {
        2_000
    } else {
        600
    };
    println!("=== Figure 2: change events across {tenants} synthetic tenants (1 week, 5-min intervals) ===");
    let population = TenantPopulation::generate(tenants, 0xF1EE7);
    let analysis = ChangeAnalysis::analyze(&population, &Catalog::azure_like());

    // Fig 2(a): IEI CDF at the paper's published points.
    println!("\nFigure 2(a): cumulative % of inter-event intervals");
    let paper_points = [
        (60.0, 86.0),
        (120.0, 91.0),
        (360.0, 95.0),
        (720.0, 97.0),
        (1440.0, 98.0),
    ];
    let rows: Vec<Vec<String>> = paper_points
        .iter()
        .map(|&(minutes, paper)| {
            let measured = analysis.iei_fraction_within(minutes) * 100.0;
            vec![
                format!("{minutes:.0} min"),
                format!("{paper:.0}%"),
                format!("{measured:.0}%"),
            ]
        })
        .collect();
    println!("{}", ascii_table(&["IEI ≤", "paper", "measured"], &rows));

    // Fig 2(b): changes/day buckets.
    println!("Figure 2(b): tenants by average change events per day");
    let rows: Vec<Vec<String>> = analysis
        .changes_per_day_buckets()
        .into_iter()
        .map(|(bucket, frac)| vec![bucket, format!("{:.1}%", frac * 100.0)])
        .collect();
    println!("{}", ascii_table(&["bucket (≥)", "tenants"], &rows));
    let cum = [(1.0, 78.0), (6.0, 52.0), (24.0, 28.0)];
    for (n, paper) in cum {
        println!(
            "  ≥{n:>2} changes/day: paper >{paper:.0}%  measured {:.0}%",
            analysis.fraction_with_at_least_changes(n) * 100.0
        );
    }

    // §4 step sizes.
    println!("\n§4 step-size distribution of change events");
    println!(
        "  1 step:  paper ≈90%   measured {:.1}%",
        analysis.step_sizes.fraction(1) * 100.0
    );
    println!(
        "  ≤2 steps: paper ≈98%  measured {:.1}%",
        analysis.step_sizes.fraction_at_most(2) * 100.0
    );
    println!("  total change events: {}", analysis.step_sizes.total());
}
