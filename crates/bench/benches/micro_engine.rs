//! Criterion micro-benchmarks for the engine substrate: request throughput
//! of the discrete-event simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dasr_containers::ResourceVector;
use dasr_engine::request::RequestBuilder;
use dasr_engine::{Engine, EngineConfig, SimTime};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_1000_requests_mixed", |b| {
        b.iter(|| {
            let mut e = Engine::new(
                EngineConfig::default(),
                ResourceVector::new(4.0, 4_096.0, 800.0, 40.0),
            );
            e.prewarm(100_000);
            for i in 0..1_000u64 {
                e.submit_at(
                    SimTime::from_micros(i * 500),
                    RequestBuilder::new()
                        .lock((i % 16) as u32, i % 4 == 0)
                        .cpu(2_000)
                        .read(i % 150_000)
                        .write((i * 7) % 150_000)
                        .log(1_024)
                        .build(),
                );
            }
            e.run_until(SimTime::from_secs(30));
            black_box(e.end_interval())
        })
    });

    c.bench_function("engine_resize_under_load", |b| {
        b.iter(|| {
            let mut e = Engine::new(
                EngineConfig::default(),
                ResourceVector::new(1.0, 1_024.0, 100.0, 5.0),
            );
            for i in 0..200u64 {
                e.submit_at(
                    SimTime::from_micros(i * 100),
                    RequestBuilder::new().cpu(10_000).build(),
                );
            }
            e.run_until(SimTime::from_millis(50));
            e.apply_resources(ResourceVector::new(8.0, 8_192.0, 1_600.0, 80.0));
            e.run_until(SimTime::from_secs(10));
            black_box(e.end_interval())
        })
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
