//! Criterion micro-benchmarks for the engine substrate: request throughput
//! of the discrete-event simulator.
//!
//! `engine_1000_requests_mixed` is the headline fast-path number (tracked
//! in `BENCH_engine.json` by CI); `engine_oracle_1000_requests_mixed` runs
//! the identical workload through the preserved pre-fast-path
//! [`OracleEngine`], so the pair measures the slab + event-wheel +
//! allocation-free-dispatch speedup directly. The lock-contention and
//! resize-churn groups stress the two paths the mixed workload exercises
//! least: waiter hand-off chains and capacity churn with eviction
//! writeback. `engine_fleet_16_tenants` is the closed-loop wall-time view
//! (engine + telemetry + policy per minute) on one thread.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dasr_containers::ResourceVector;
use dasr_core::{tenant_seed, AutoPolicy, FleetRunner, RunConfig, ScalingPolicy, TenantSpec};
use dasr_engine::request::RequestBuilder;
use dasr_engine::{Engine, EngineConfig, OracleEngine, SimTime};
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

/// Submits the headline mixed workload (locks + CPU + reads + dirty
/// writes + log appends) into either engine via the `submit` closure.
macro_rules! mixed_workload {
    ($e:ident) => {
        for i in 0..1_000u64 {
            $e.submit_at(
                SimTime::from_micros(i * 500),
                RequestBuilder::new()
                    .lock((i % 16) as u32, i % 4 == 0)
                    .cpu(2_000)
                    .read(i % 150_000)
                    .write((i * 7) % 150_000)
                    .log(1_024)
                    .build(),
            );
        }
    };
}

fn bench_engine(c: &mut Criterion) {
    let container = ResourceVector::new(4.0, 4_096.0, 800.0, 40.0);

    c.bench_function("engine_1000_requests_mixed", |b| {
        b.iter(|| {
            let mut e = Engine::new(EngineConfig::default(), container);
            e.prewarm(100_000);
            mixed_workload!(e);
            e.run_until(SimTime::from_secs(30));
            black_box(e.end_interval())
        })
    });

    c.bench_function("engine_oracle_1000_requests_mixed", |b| {
        b.iter(|| {
            let mut e = OracleEngine::new(EngineConfig::default(), container);
            e.prewarm(100_000);
            mixed_workload!(e);
            e.run_until(SimTime::from_secs(30));
            black_box(e.end_interval())
        })
    });

    c.bench_function("engine_resize_under_load", |b| {
        b.iter(|| {
            let mut e = Engine::new(
                EngineConfig::default(),
                ResourceVector::new(1.0, 1_024.0, 100.0, 5.0),
            );
            for i in 0..200u64 {
                e.submit_at(
                    SimTime::from_micros(i * 100),
                    RequestBuilder::new().cpu(10_000).build(),
                );
            }
            e.run_until(SimTime::from_millis(50));
            e.apply_resources(ResourceVector::new(8.0, 8_192.0, 1_600.0, 80.0));
            e.run_until(SimTime::from_secs(10));
            black_box(e.end_interval())
        })
    });
}

/// Long waiter chains on a handful of hot locks: almost every request
/// blocks, so the run is dominated by lock grant hand-off and waiter
/// resumption (the `release`/`release_all` scratch path).
fn bench_lock_contention(c: &mut Criterion) {
    c.bench_function("engine_lock_contention_heavy", |b| {
        b.iter(|| {
            let mut e = Engine::new(
                EngineConfig::default(),
                ResourceVector::new(8.0, 1_024.0, 800.0, 40.0),
            );
            for i in 0..800u64 {
                e.submit_at(
                    SimTime::from_micros(i * 50),
                    RequestBuilder::new()
                        .lock((i % 4) as u32, true)
                        .cpu(300)
                        .lock(4 + (i % 2) as u32, i % 8 != 0)
                        .think(200)
                        .build(),
                );
            }
            e.run_until(SimTime::from_secs(30));
            black_box(e.end_interval())
        })
    });
}

/// Capacity churn: a resize every simulated 250 ms (alternating shrink and
/// grow) while a read/write stream keeps the pool full — stresses
/// `set_capacity` eviction, the page-map rebuild-free delete path, and
/// writeback coalescing.
fn bench_resize_churn(c: &mut Criterion) {
    c.bench_function("engine_resize_churn", |b| {
        b.iter(|| {
            let big = ResourceVector::new(4.0, 1_024.0, 800.0, 40.0);
            let small = ResourceVector::new(2.0, 128.0, 400.0, 20.0);
            let mut e = Engine::new(EngineConfig::default(), big);
            e.prewarm(50_000);
            for i in 0..600u64 {
                e.submit_at(
                    SimTime::from_micros(i * 800),
                    RequestBuilder::new()
                        .cpu(500)
                        .write(i % 40_000)
                        .read((i * 13) % 40_000)
                        .build(),
                );
            }
            for step in 0..8u64 {
                e.run_until(SimTime::from_millis(250 * (step + 1)));
                e.apply_resources(if step % 2 == 0 { small } else { big });
            }
            e.run_until(SimTime::from_secs(20));
            black_box(e.end_interval())
        })
    });
}

/// Fleet wall time: 16 tenants × 10 minutes of the full closed loop
/// (engine + telemetry + auto-policy) on one thread — the end-to-end view
/// of what the engine fast path buys a fleet experiment.
fn bench_fleet(c: &mut Criterion) {
    let tenants: Vec<TenantSpec<CpuIoWorkload>> = (0..16)
        .map(|i| TenantSpec {
            cfg: RunConfig {
                seed: tenant_seed(0xBE7C, i as u64),
                ..RunConfig::default()
            },
            trace: Trace::new(
                "bench",
                (0..10).map(|m| 4.0 + ((i + m) % 6) as f64 * 2.5).collect(),
            ),
            workload: CpuIoWorkload::new(CpuIoConfig::small()),
        })
        .collect();
    c.bench_function("engine_fleet_16_tenants_10min", |b| {
        b.iter(|| {
            let report = FleetRunner::new(1).run_fleet(&tenants, |_, t| {
                Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
            });
            black_box(report.completed_total())
        })
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_lock_contention,
    bench_resize_churn,
    bench_fleet
);
criterion_main!(benches);
