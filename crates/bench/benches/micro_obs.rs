//! Observability overhead on the per-interval hot path: the full signal
//! computation with and without the metrics registry + event derivation
//! the runner performs each interval (wall timers, `record_interval`).
//!
//! The acceptance bar is <5% overhead — the registry is fixed arrays and
//! a bounded event push, so it must stay invisible next to the §3 signal
//! pipeline it instruments. Isolated benches for `record_interval`, the
//! fleet merge and the JSONL sinks are included for drill-down.
//!
//! With `DASR_BENCH_JSON` set, the vendored criterion shim appends one
//! `{"bench": …, "ns_per_iter": …}` line per benchmark — CI publishes
//! them as `BENCH_obs.json`.

use criterion::{black_box, Criterion};
use dasr_containers::{ContainerId, ResourceKind};
use dasr_core::obs::{EventVerbosity, IntervalObservation, RunObservability, TimerId};
use dasr_core::DecisionTrace;
use dasr_engine::WaitClass;
use dasr_telemetry::{LatencyGoal, TelemetryConfig, TelemetryManager, TelemetrySample};
use std::time::Instant;

/// Intervals processed per benchmark iteration (results are per-batch).
const INTERVALS: usize = 1_000;

fn sample(i: u64) -> TelemetrySample {
    let mut util_pct = [0.0; 4];
    util_pct[ResourceKind::Cpu.index()] = 40.0 + (i % 17) as f64;
    util_pct[ResourceKind::Memory.index()] = 85.0;
    util_pct[ResourceKind::DiskIo.index()] = 20.0 + (i % 7) as f64;
    util_pct[ResourceKind::LogIo.index()] = 5.0;
    let mut wait_ms = [0.0; 7];
    wait_ms[WaitClass::Cpu.index()] = 500.0 + (i % 13) as f64 * 100.0;
    wait_ms[WaitClass::DiskIo.index()] = 200.0;
    wait_ms[WaitClass::Lock.index()] = 100.0;
    TelemetrySample {
        interval: i,
        util_pct,
        wait_ms,
        latency_ms: Some(80.0 + (i % 11) as f64),
        avg_latency_ms: Some(60.0),
        completed: 5_000,
        arrivals: 5_000,
        rejected: 0,
        mem_used_mb: 3_000.0,
        mem_capacity_mb: 3_482.0,
        disk_reads_per_sec: 50.0,
    }
}

fn telemetry_config() -> TelemetryConfig {
    TelemetryConfig {
        latency_goal: Some(LatencyGoal::P95(100.0)),
        ..TelemetryConfig::default()
    }
}

/// Pre-generated decision traces covering the notable-event paths: every
/// 16th interval "resizes" so the event stream sees real pushes, the rest
/// hold steady (the common case).
fn traces() -> Vec<DecisionTrace> {
    let mut tm = TelemetryManager::new(telemetry_config());
    (0..INTERVALS as u64)
        .map(|i| {
            let signals = tm.observe(sample(i));
            let mut t = DecisionTrace::from_signals(&signals, ContainerId(2));
            if i % 16 == 0 {
                t.target = ContainerId(3);
            }
            t
        })
        .collect()
}

fn observation<'a>(t: &'a DecisionTrace, i: u64) -> IntervalObservation<'a> {
    IntervalObservation {
        trace: t,
        latency_ms: Some(80.0 + (i % 11) as f64),
        completed: 5_000,
        rejected: 0,
        from_rung: 2,
        to_rung: if t.target == t.from { 2 } else { 3 },
        budget_headroom_pct: Some(60.0 - (i % 50) as f64),
    }
}

fn bench_obs(c: &mut Criterion) {
    let traces = traces();

    // The per-interval hot path as the runner executes it, minus
    // observability: push a sample, compute the full §3 signal set.
    c.bench_function("interval_path_bare_1k", |b| {
        let mut tm = TelemetryManager::new(telemetry_config());
        let mut i = 0u64;
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..INTERVALS {
                i += 1;
                let signals = tm.observe(sample(i));
                acc += signals.resources[0].util_pct;
            }
            black_box(acc)
        })
    });

    // Same path plus exactly what the runner adds per interval: a wall
    // timer around the signal stage and `record_interval` (counters,
    // histograms, rule fires, derived events at the default verbosity).
    c.bench_function("interval_path_instrumented_1k", |b| {
        let mut tm = TelemetryManager::new(telemetry_config());
        let mut i = 0u64;
        b.iter(|| {
            let mut obs = RunObservability::new(EventVerbosity::Notable);
            let mut acc = 0.0;
            for k in 0..INTERVALS {
                i += 1;
                let t0 = Instant::now();
                let signals = tm.observe(sample(i));
                obs.metrics
                    .observe_ns(TimerId::SignalsNs, t0.elapsed().as_nanos() as u64);
                acc += signals.resources[0].util_pct;
                obs.record_interval(observation(&traces[k], i));
            }
            black_box((acc, obs.events.len()))
        })
    });

    // Drill-downs: the recording call alone, the fleet merge, the sinks.
    c.bench_function("record_interval_1k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let mut obs = RunObservability::new(EventVerbosity::Notable);
            for (k, t) in traces.iter().enumerate() {
                i += 1;
                obs.record_interval(observation(t, i));
                black_box(k);
            }
            black_box(obs.events.len())
        })
    });

    c.bench_function("fleet_merge_64_tenants", |b| {
        let mut tenant = RunObservability::new(EventVerbosity::Notable);
        for (k, t) in traces.iter().enumerate() {
            tenant.record_interval(observation(t, k as u64));
        }
        tenant.stamp_tenant(0);
        b.iter(|| {
            let mut fleet = RunObservability::new(EventVerbosity::Notable);
            for _ in 0..64 {
                fleet.merge(&tenant);
            }
            black_box(
                fleet
                    .metrics
                    .counter(dasr_core::obs::CounterId::IntervalsRun),
            )
        })
    });

    c.bench_function("events_jsonl_sink", |b| {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        for (k, t) in traces.iter().enumerate() {
            obs.record_interval(observation(t, k as u64));
        }
        b.iter(|| black_box(obs.events_jsonl().len()))
    });

    c.bench_function("registry_jsonl_sink", |b| {
        let mut obs = RunObservability::new(EventVerbosity::Notable);
        for (k, t) in traces.iter().enumerate() {
            obs.record_interval(observation(t, k as u64));
        }
        b.iter(|| black_box(obs.metrics.to_jsonl().len()))
    });
}

fn main() {
    let mut c = Criterion::default();
    bench_obs(&mut c);
    let ns = |needle: &str| {
        c.measurements()
            .iter()
            .find(|m| m.id.contains(needle))
            .map(|m| m.ns_per_iter)
    };
    if let (Some(bare), Some(instr)) = (ns("bare"), ns("instrumented")) {
        if bare > 0.0 {
            let overhead = (instr - bare) / bare * 100.0;
            println!(
                "observability overhead on the per-interval hot path: {overhead:+.2}% \
                 (bare {:.0} ns → instrumented {:.0} ns per {INTERVALS}-interval batch; \
                 acceptance bar <5%)",
                bare, instr
            );
        }
    }
    c.emit_json();
}
