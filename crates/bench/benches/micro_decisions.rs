//! Criterion micro-benchmarks for the declarative decision engine: the §4
//! demand tables and the §6 arbitration table over pre-generated signal
//! sets, plus decision-trace JSONL serialization. A fleet control plane
//! re-evaluates these tables for every tenant every interval, so they must
//! stay in the nanosecond range.
//!
//! With `DASR_BENCH_JSON` set, the vendored criterion shim appends one
//! `{"bench": …, "ns_per_iter": …}` line per benchmark — CI publishes them
//! as `BENCH_decisions.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_core::rules::{EvalCtx, Fact, FactSet, ARBITRATION, HIGH_DEMAND, LOW_DEMAND};
use dasr_core::{DecisionTrace, EstimatorConfig};
use dasr_stats::{Trend, TrendDirection};
use dasr_telemetry::categorize::{LatencyVerdict, UtilLevel, WaitPctLevel, WaitTimeLevel};
use dasr_telemetry::signals::{LatencySignals, ResourceSignals};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SETS: usize = 10_000;

fn random_trend(rng: &mut StdRng) -> Trend {
    if rng.gen_bool(0.5) {
        Trend::None
    } else {
        Trend::Significant {
            direction: if rng.gen_bool(0.7) {
                TrendDirection::Increasing
            } else {
                TrendDirection::Decreasing
            },
            slope: rng.gen_range(0.01..5.0),
            agreement: rng.gen_range(0.5..1.0),
        }
    }
}

fn random_resource(rng: &mut StdRng, kind: ResourceKind) -> ResourceSignals {
    ResourceSignals {
        kind,
        util_pct: rng.gen_range(0.0..100.0),
        util_level: match rng.gen_range(0..3u32) {
            0 => UtilLevel::Low,
            1 => UtilLevel::Medium,
            _ => UtilLevel::High,
        },
        wait_ms: rng.gen_range(0.0..10_000.0),
        wait_level: match rng.gen_range(0..3u32) {
            0 => WaitTimeLevel::Low,
            1 => WaitTimeLevel::Medium,
            _ => WaitTimeLevel::High,
        },
        wait_pct: rng.gen_range(0.0..100.0),
        wait_pct_level: if rng.gen_bool(0.5) {
            WaitPctLevel::Significant
        } else {
            WaitPctLevel::NotSignificant
        },
        util_trend: random_trend(rng),
        wait_trend: random_trend(rng),
        corr_latency_wait: rng.gen_bool(0.5).then(|| rng.gen_range(-1.0..1.0)),
        corr_latency_util: None,
    }
}

/// 10 000 (resources × latency) signal sets with levels sampled across the
/// whole category lattice — every table row is reachable.
fn signal_sets() -> Vec<([ResourceSignals; 4], LatencySignals)> {
    let mut rng = StdRng::seed_from_u64(0xDEC1_5105);
    (0..SETS)
        .map(|_| {
            let resources = std::array::from_fn(|i| random_resource(&mut rng, RESOURCE_KINDS[i]));
            let latency = LatencySignals {
                observed_ms: Some(rng.gen_range(1.0..2_000.0)),
                goal_ms: Some(100.0),
                verdict: if rng.gen_bool(0.4) {
                    LatencyVerdict::Bad
                } else {
                    LatencyVerdict::Good
                },
                trend: random_trend(&mut rng),
            };
            (resources, latency)
        })
        .collect()
}

fn random_facts(rng: &mut StdRng) -> FactSet {
    [
        Fact::HasGoal,
        Fact::LatencyAttention,
        Fact::Emergency,
        Fact::UpBlocked,
        Fact::DownBlocked,
        Fact::DemandUp,
        Fact::DemandDown,
        Fact::WantsDown,
        Fact::ScaleUpGate,
        Fact::LockShareHigh,
        Fact::HeadroomOk,
        Fact::BalloonEnabled,
    ]
    .into_iter()
    .fold(FactSet::new(), |set, fact| {
        set.with(fact, rng.gen_bool(0.5))
    })
}

fn bench_decisions(c: &mut Criterion) {
    let cfg = EstimatorConfig::default();
    let sets = signal_sets();

    // The full §4 pass one control plane performs per tenant per interval:
    // HIGH_DEMAND for all four resources, LOW_DEMAND for the non-memory
    // ones that stayed quiet. Reported per 10k-set sweep.
    c.bench_function("rule_tables_10k_signal_sets", |b| {
        b.iter(|| {
            let mut fired = 0usize;
            for (resources, latency) in &sets {
                for sig in resources {
                    let ctx = EvalCtx::demand(&cfg, sig, latency);
                    let hit = HIGH_DEMAND.evaluate(&ctx).fired.or_else(|| {
                        if sig.kind == ResourceKind::Memory {
                            None
                        } else {
                            LOW_DEMAND.evaluate(&ctx).fired
                        }
                    });
                    fired += usize::from(hit.is_some());
                }
            }
            black_box(fired)
        })
    });

    c.bench_function("arbitration_10k_fact_sets", |b| {
        let mut rng = StdRng::seed_from_u64(0xFAC7_5E75);
        let facts: Vec<FactSet> = (0..SETS).map(|_| random_facts(&mut rng)).collect();
        b.iter(|| {
            let mut fired = 0usize;
            for &f in &facts {
                let eval = ARBITRATION.evaluate(&EvalCtx::arbitration(&cfg, f));
                fired += usize::from(eval.fired.is_some());
            }
            black_box(fired)
        })
    });

    c.bench_function("trace_to_jsonl", |b| {
        let (resources, latency) = &sets[0];
        let signals = dasr_telemetry::signals::SignalSet {
            interval: 7,
            resources: *resources,
            latency: *latency,
            lock_wait_pct: 12.0,
            latch_wait_pct: 1.0,
            other_wait_pct: 2.0,
            total_wait_ms: 900.0,
            mem_used_mb: 3_000.0,
            mem_capacity_mb: 3_482.0,
            disk_reads_per_sec: 50.0,
            completed: 5_000,
            rejected: 0,
        };
        let trace = DecisionTrace::from_signals(&signals, dasr_containers::ContainerId(2));
        b.iter(|| black_box(trace.to_json_line()))
    });
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
