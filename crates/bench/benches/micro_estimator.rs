//! Criterion micro-benchmarks for the decision path: telemetry ingestion →
//! signal computation → demand estimation. The paper's logic must be cheap
//! enough to run for hundreds of thousands of tenants each billing
//! interval.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dasr_containers::ResourceKind;
use dasr_core::DemandEstimator;
use dasr_engine::WaitClass;
use dasr_telemetry::{LatencyGoal, TelemetryConfig, TelemetryManager, TelemetrySample};

fn sample(i: u64) -> TelemetrySample {
    let mut util_pct = [0.0; 4];
    util_pct[ResourceKind::Cpu.index()] = 40.0 + (i % 17) as f64;
    util_pct[ResourceKind::Memory.index()] = 85.0;
    util_pct[ResourceKind::DiskIo.index()] = 20.0 + (i % 7) as f64;
    util_pct[ResourceKind::LogIo.index()] = 5.0;
    let mut wait_ms = [0.0; 7];
    wait_ms[WaitClass::Cpu.index()] = 500.0 + (i % 13) as f64 * 100.0;
    wait_ms[WaitClass::DiskIo.index()] = 200.0;
    wait_ms[WaitClass::Lock.index()] = 100.0;
    TelemetrySample {
        interval: i,
        util_pct,
        wait_ms,
        latency_ms: Some(80.0 + (i % 11) as f64),
        avg_latency_ms: Some(60.0),
        completed: 5_000,
        arrivals: 5_000,
        rejected: 0,
        mem_used_mb: 3_000.0,
        mem_capacity_mb: 3_482.0,
        disk_reads_per_sec: 50.0,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("telemetry_observe_plus_signals", |b| {
        let mut tm = TelemetryManager::new(TelemetryConfig {
            latency_goal: Some(LatencyGoal::P95(100.0)),
            ..TelemetryConfig::default()
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tm.observe(sample(i)))
        })
    });

    c.bench_function("demand_estimate", |b| {
        let mut tm = TelemetryManager::new(TelemetryConfig::default());
        for i in 0..30 {
            tm.observe(sample(i));
        }
        let signals = tm.signals();
        let est = DemandEstimator::default();
        b.iter(|| black_box(est.estimate(black_box(&signals))))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
