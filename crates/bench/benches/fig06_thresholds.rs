//! Figure 6 + §4.1: conditional wait distributions and threshold
//! derivation from fleet telemetry.
//!
//! The paper splits fleet wait observations by the resource's utilization
//! (low <30%, high >70%) and reads category thresholds off the separated
//! conditional distributions:
//! - 6(a): at low utilization, the p90 of CPU/disk waits ≈ 20 s;
//! - 6(b): at high utilization, the p75 ≈ 500 s (disk) / 1500 s (CPU);
//! - 6(c): at low utilization, the p80 of percentage-waits ≈ 20–30%;
//! - 6(d): at high utilization, percentage-waits run 60–95%.

use dasr_bench::table::ascii_table;
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_fleet::{derive_threshold_config, WaitModel};
use dasr_stats::percentile;

fn main() {
    let n = if std::env::var("DASR_FULL").is_ok() {
        200_000
    } else {
        50_000
    };

    for (kind, label) in [
        (ResourceKind::Cpu, "CPU"),
        (ResourceKind::DiskIo, "Disk I/O"),
    ] {
        let obs = WaitModel::new(kind, 42).generate(n);
        let (mut wl, mut wh, mut pl, mut ph) = (vec![], vec![], vec![], vec![]);
        for o in &obs {
            if o.util_pct < 30.0 {
                wl.push(o.wait_ms);
                pl.push(o.wait_pct);
            } else if o.util_pct > 70.0 {
                wh.push(o.wait_ms);
                ph.push(o.wait_pct);
            }
        }
        println!("\n=== Figure 6: {label} conditional distributions ===");
        let rows = vec![
            vec![
                "wait ms, low util p90 (6a)".to_string(),
                "≈20,000".to_string(),
                format!("{:.0}", percentile(&wl, 90.0).unwrap()),
            ],
            vec![
                "wait ms, high util p75 (6b)".to_string(),
                if kind == ResourceKind::Cpu {
                    "≈1,500,000"
                } else {
                    "≈500,000"
                }
                .to_string(),
                format!("{:.0}", percentile(&wh, 75.0).unwrap()),
            ],
            vec![
                "wait %, low util p80 (6c)".to_string(),
                "20-30".to_string(),
                format!("{:.0}", percentile(&pl, 80.0).unwrap()),
            ],
            vec![
                "wait %, high util p50 (6d)".to_string(),
                "60-95".to_string(),
                format!("{:.0}", percentile(&ph, 50.0).unwrap()),
            ],
        ];
        println!(
            "{}",
            ascii_table(&["statistic", "paper", "measured"], &rows)
        );
    }

    println!("\n=== §4.1: thresholds derived from the fleet (per 5-minute interval) ===");
    let cfg = derive_threshold_config(n, 1.0, 7);
    let rows: Vec<Vec<String>> = RESOURCE_KINDS
        .iter()
        .map(|&k| {
            let w = cfg.waits_for(k);
            vec![
                k.to_string(),
                format!("{:.0} ms", w.low_ms),
                format!("{:.0} ms", w.high_ms),
                format!("{:.0}%", w.significant_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        ascii_table(&["resource", "LOW ≤", "HIGH ≥", "SIGNIFICANT ≥"], &rows)
    );
    println!(
        "utilization bands: LOW ≤ {:.0}%, HIGH ≥ {:.0}% (administrator rules, §4.1)",
        cfg.util_low_pct, cfg.util_high_pct
    );
}
