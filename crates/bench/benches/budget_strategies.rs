//! §5: budget-manager strategies under bursty demand.
//!
//! The token bucket guarantees the hard constraint ΣCᵢ ≤ B; the strategies
//! differ in how the surplus may be burst. With an early *and* a late burst
//! and a budget that cannot afford both at full size, the aggressive
//! strategy spends early and is pinned near the cheapest container for the
//! late burst, while the conservative strategy saves for it.

use dasr_bench::compare::ExperimentScale;
use dasr_bench::table::ascii_table;
use dasr_core::policy::AutoPolicy;
use dasr_core::runner::ClosedLoop;
use dasr_core::{BudgetStrategy, RunConfig, TenantKnobs};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn two_burst_trace(minutes: usize) -> Trace {
    let m = minutes as f64;
    let rps: Vec<f64> = (0..minutes)
        .map(|i| {
            let x = i as f64 / m;
            if (0.10..0.25).contains(&x) || (0.75..0.90).contains(&x) {
                150.0
            } else {
                5.0
            }
        })
        .collect();
    Trace::new("two-bursts", rps)
}

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = two_burst_trace(minutes);
    let workload = CpuIoWorkload::new(CpuIoConfig::default());
    // Enough for the floor plus roughly one burst at C7, not two.
    let budget = minutes as f64 * 7.0 + 0.18 * minutes as f64 * 160.0;
    let knobs = TenantKnobs::none()
        .with_latency_goal(LatencyGoal::P95(200.0))
        .with_budget(budget);

    println!("=== §5: token-bucket budget strategies (budget {budget:.0} units over {minutes} intervals) ===");
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("aggressive (TI = D)", BudgetStrategy::Aggressive),
        (
            "conservative (TI = 3 Cmax)",
            BudgetStrategy::Conservative { k: 3 },
        ),
    ] {
        let cfg = RunConfig {
            knobs,
            budget_strategy: strategy,
            prewarm_pages: workload.config().hot_pages,
            ..RunConfig::default()
        };
        let mut policy = AutoPolicy::with_knobs(knobs);
        let report = ClosedLoop::run(&cfg, &trace, workload.clone(), &mut policy);
        let half = report.intervals.len() / 2;
        let early: Vec<f64> = report.intervals[..half]
            .iter()
            .filter_map(|i| i.latency_ms)
            .collect();
        let late: Vec<f64> = report.intervals[half..]
            .iter()
            .filter_map(|i| i.latency_ms)
            .collect();
        let p95 = |v: &[f64]| dasr_stats::percentile(v, 95.0).unwrap_or(f64::NAN);
        assert!(
            report.total_cost() <= budget + 1e-6,
            "budget must be a hard constraint"
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", report.total_cost()),
            format!("{:.0}", p95(&early)),
            format!("{:.0}", p95(&late)),
        ]);
    }
    println!(
        "{}",
        ascii_table(
            &[
                "strategy",
                "total spend",
                "early-half p95 (ms)",
                "late-half p95 (ms)"
            ],
            &rows
        )
    );
    println!(
        "expected: both stay within budget; the conservative strategy trades early-burst \
         latency for a better late burst (§5's K-limited bursting)."
    );
}
