//! Figure 11: CPUIO on trace 3 (one short burst), goal 5× Max.
//!
//! Paper: Peak costs 4.5×, Avg 1.5× and Util 2.5× what Auto costs; Avg and
//! Peak degrade latency during the burst while Auto tracks the goal.

use dasr_bench::compare::{print_comparison, run_policy_comparison, ExperimentScale};
use dasr_core::RunConfig;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(3, minutes);
    let base = RunConfig::default();
    let r = run_policy_comparison(
        &trace,
        CpuIoWorkload::new(CpuIoConfig::default()),
        5.0,
        &base,
    );
    print_comparison(
        &format!("Figure 11: CPUIO on trace 3, goal 5x Max ({minutes} min)"),
        "5 x p95(Max)",
        &r,
    );
    for (policy, expected) in [("peak", 4.5), ("avg", 1.5), ("util", 2.5)] {
        println!(
            "  paper cost({policy})/cost(auto) = {expected:.2}x | measured {:.2}x",
            r.cost_ratio_vs_auto(policy)
        );
    }
}
