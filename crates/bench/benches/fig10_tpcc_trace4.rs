//! Figure 10: TPC-C on trace 4 (many bursts), goal 1.25× Max.
//!
//! Paper: among goal-meeting policies, Peak costs 2×, Trace 2.4× and Util
//! 3.4× what Auto costs — Auto recognizes the lock-dominated waits and does
//! not buy resources that cannot help (see also Figure 13).

use dasr_bench::compare::{print_comparison, run_policy_comparison, ExperimentScale};
use dasr_core::RunConfig;
use dasr_workloads::{TpccConfig, TpccWorkload, Trace};

fn main() {
    let minutes = ExperimentScale::from_env().minutes();
    let trace = Trace::paper_with_len(4, minutes);
    let base = RunConfig::default();
    let r = run_policy_comparison(
        &trace,
        TpccWorkload::new(TpccConfig::default()),
        1.25,
        &base,
    );
    print_comparison(
        &format!("Figure 10: TPC-C on trace 4, goal 1.25x Max ({minutes} min)"),
        "1.25 x p95(Max)",
        &r,
    );
    for (policy, expected) in [("peak", 2.0), ("trace", 2.4), ("util", 3.4)] {
        println!(
            "  paper cost({policy})/cost(auto) = {expected:.2}x | measured {:.2}x",
            r.cost_ratio_vs_auto(policy)
        );
    }
}
