//! Fleet scale ceiling: can the scheduler run a 100k-tenant fleet, and is
//! summary mode's memory really O(shards) rather than O(tenants)?
//!
//! Two passes over the same fleet, summary mode FIRST (peak RSS is a
//! monotone high-water mark, so the cheap mode must be measured before the
//! expensive one can raise the floor):
//!
//! 1. `run_fleet_summary` with a `CountingSink` — per-tenant reports are
//!    folded and dropped inside the workers; only the O(shards)
//!    accumulators stay live.
//! 2. `run_fleet` (full mode) — every `RunReport` kept, the O(tenants)
//!    baseline the summary mode is measured against.
//!
//! Peak RSS (VmHWM on Linux) is reported after each pass; the full pass
//! should dominate the high-water mark by a wide margin. `--test` runs a
//! few hundred tenants (CI smoke); the default is 20k; `DASR_FULL` runs
//! the eponymous 100k. Set `DASR_BENCH_JSON` to append result lines.

use dasr_core::policy::{AutoPolicy, ScalingPolicy};
use dasr_core::{tenant_seed, CountingSink, FleetRunner, RunConfig, TenantKnobs, TenantSpec};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use std::io::Write as _;
use std::time::Instant;

/// Peak resident set size (VmHWM), in MiB, from /proc/self/status.
/// `None` off Linux — the bench still runs, it just can't report memory.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

fn build_fleet(tenants: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..tenants)
        .map(|i| {
            let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(200.0));
            let rps = 2.0 + (i % 5) as f64 * 2.0;
            TenantSpec {
                cfg: RunConfig {
                    knobs,
                    seed: tenant_seed(0x100_000, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("fleet", vec![rps]),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

fn emit_json(lines: &[(String, f64)]) {
    let Ok(path) = std::env::var("DASR_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    for (bench, secs) in lines {
        let _ = writeln!(
            file,
            "{{\"bench\":\"{bench}\",\"ns_per_iter\":{:.1},\"iters\":1}}",
            secs * 1.0e9
        );
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let tenants_n = if test_mode {
        256
    } else if std::env::var("DASR_FULL").is_ok() {
        100_000
    } else {
        20_000
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runner = FleetRunner::new(threads);
    println!(
        "=== fleet_100k_tenants: {tenants_n} tenants x 1 interval, {threads} threads, {} shards ===",
        runner.shard_count(tenants_n)
    );
    let tenants = build_fleet(tenants_n);
    let baseline_mib = peak_rss_mib();

    let mut sink = CountingSink::default();
    let start = Instant::now();
    let summary = runner.run_fleet_summary(
        &tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>,
        &mut sink,
    );
    let summary_secs = start.elapsed().as_secs_f64();
    let summary_mib = peak_rss_mib();
    assert_eq!(summary.tenants, tenants_n as u64);
    assert_eq!(summary.events_emitted, sink.count);

    let start = Instant::now();
    let full = runner.run_fleet(&tenants, |_, t| {
        Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
    });
    let full_secs = start.elapsed().as_secs_f64();
    let full_mib = peak_rss_mib();
    assert_eq!(
        full.fleet_summary(),
        &summary,
        "full-mode fold diverged from the streamed summary"
    );

    let fmt_mib = |m: Option<f64>| m.map_or_else(|| "n/a".into(), |v| format!("{v:.0} MiB"));
    println!(
        "  fleet specs resident:          peak RSS {}",
        fmt_mib(baseline_mib)
    );
    println!(
        "  summary mode: {summary_secs:>7.2} s   peak RSS {}",
        fmt_mib(summary_mib)
    );
    println!(
        "  full mode:    {full_secs:>7.2} s   peak RSS {}",
        fmt_mib(full_mib)
    );
    if let (Some(base), Some(s), Some(f)) = (baseline_mib, summary_mib, full_mib) {
        println!(
            "  run overhead over specs: summary +{:.0} MiB, full +{:.0} MiB",
            s - base,
            f - base
        );
    }
    println!("  {}", summary.summary());

    emit_json(&[
        (
            format!("fleet_100k_tenants/summary_{tenants_n}t_{threads}thr"),
            summary_secs,
        ),
        (
            format!("fleet_100k_tenants/full_{tenants_n}t_{threads}thr"),
            full_secs,
        ),
    ]);
    if test_mode {
        println!("test fleet_100k_tenants ... ok");
    }
}
