//! Figure 14: the impact of ballooning on end-to-end latency when low
//! memory demand is estimated incorrectly.
//!
//! A steady workload whose ~3 GB working set fits the current container but
//! not the next smaller one. Without ballooning, Auto resizes memory down
//! immediately: the working set is evicted, misses saturate the smaller
//! disk allocation, latency jumps orders of magnitude, and even after
//! reverting it takes a long time to re-cache the working set. With
//! ballooning, the pool deflates slowly, the I/O rise is detected, and the
//! probe aborts with minimal latency impact.

use dasr_bench::table::ascii_series;
use dasr_core::policy::auto::AutoConfig;
use dasr_core::policy::AutoPolicy;
use dasr_core::runner::ClosedLoop;
use dasr_core::{FleetRunner, RunConfig, RunReport, TenantKnobs};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn workload() -> CpuIoWorkload {
    // Page-access-heavy, mild CPU: the working set is what matters.
    CpuIoWorkload::new(CpuIoConfig {
        cpu_us_mean: 10_000.0,
        pages_per_request: 40,
        log_bytes: 1_024,
        db_pages: 4 * 131_072,  // 4 GB
        hot_pages: 3 * 131_072, // 3 GB working set (the paper's setup)
        hot_prob: 0.98,
        mix: [0.0, 0.0, 0.0, 1.0], // balanced only
        grant_prob: 0.0,
        grant_mb: 0,
    })
}

fn run(balloon_enabled: bool, minutes: usize) -> RunReport {
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(500.0));
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload().config().hot_pages,
        ..RunConfig::default()
    };
    let trace = Trace::new("steady12", vec![12.0; minutes]);
    let mut policy = AutoPolicy::new(AutoConfig {
        balloon_enabled,
        ..AutoConfig::with_knobs(knobs)
    });
    ClosedLoop::run(&cfg, &trace, workload(), &mut policy)
}

fn print_run(label: &str, report: &RunReport) {
    println!("\n--- {label} ---");
    let mem: Vec<f64> = report.intervals.iter().map(|i| i.mem_used_mb).collect();
    let lat: Vec<f64> = report
        .intervals
        .iter()
        .map(|i| i.latency_ms.unwrap_or(f64::NAN))
        .collect();
    let bucket = (report.intervals.len() / 18).max(1);
    println!(
        "{}",
        ascii_series("memory used (MB) — Figure 14(a)", &mem, bucket, 40)
    );
    println!(
        "{}",
        ascii_series("p95 latency (ms) — Figure 14(b)", &lat, bucket, 40)
    );
    let max_lat = lat
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0, f64::max);
    let baseline = lat
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .take(5)
        .sum::<f64>()
        / 5.0;
    println!(
        "baseline p95 ≈ {baseline:.0} ms, worst interval {max_lat:.0} ms ({:.1}x baseline), resizes {}",
        max_lat / baseline.max(1e-9),
        report.resizes
    );
}

fn main() {
    let minutes = if std::env::var("DASR_FULL").is_ok() {
        240
    } else {
        90
    };
    println!("=== Figure 14: ballooning vs immediate memory reduction (steady 12 rps, 3 GB working set) ===");
    // The two arms are independent and identically seeded: run them in
    // parallel.
    let mut reports = FleetRunner::with_available_parallelism().map(2, |i| run(i == 0, minutes));
    let without = reports.pop().expect("two runs");
    let with = reports.pop().expect("two runs");
    print_run("Ballooning (Auto, §4.3)", &with);
    print_run("No Ballooning (memory dropped immediately)", &without);

    let worst = |r: &RunReport| {
        r.intervals
            .iter()
            .filter_map(|i| i.latency_ms)
            .fold(0.0, f64::max)
    };
    println!(
        "\npaper: without ballooning, latency rises two orders of magnitude and recovery is slow; \
         with ballooning the probe aborts with minimal impact.\n\
         measured worst-interval latency: ballooning {:.0} ms vs no-ballooning {:.0} ms",
        worst(&with),
        worst(&without)
    );
}
