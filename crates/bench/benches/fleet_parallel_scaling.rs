//! Wall-clock scaling of the sharded fleet runner: the same ≥64-tenant
//! fleet executed at 1, 2, 4 and 8 threads, in both full mode
//! (`run_fleet`) and streaming summary mode (`run_fleet_summary`),
//! verifying (a) the speedup, (b) that every thread count produces
//! bit-identical per-tenant results, and (c) that the streamed summary
//! equals the full run's folded summary (the FleetRunner determinism
//! contract).
//!
//! `--test` runs a tiny fleet once per thread count (CI smoke). Set
//! `DASR_BENCH_JSON` to append `{"bench": ..., "ns_per_iter": ...}` lines.

use dasr_core::policy::{AutoPolicy, ScalingPolicy};
use dasr_core::{
    tenant_seed, FleetReport, FleetRunner, FleetSummary, NullSink, RunConfig, TenantKnobs,
    TenantSpec,
};
use dasr_telemetry::LatencyGoal;
use dasr_workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use std::io::Write as _;
use std::time::Instant;

fn build_fleet(tenants: usize, minutes: usize) -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..tenants)
        .map(|i| {
            let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(200.0));
            let rps = 4.0 + (i % 7) as f64 * 3.0;
            TenantSpec {
                cfg: RunConfig {
                    knobs,
                    seed: tenant_seed(0xF1EE7, i as u64),
                    ..RunConfig::default()
                },
                trace: Trace::new("fleet", vec![rps; minutes]),
                workload: CpuIoWorkload::new(CpuIoConfig::small()),
            }
        })
        .collect()
}

fn run(tenants: &[TenantSpec<CpuIoWorkload>], threads: usize) -> (FleetReport, f64) {
    let start = Instant::now();
    let report = FleetRunner::new(threads).run_fleet(tenants, |_, t| {
        Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
    });
    (report, start.elapsed().as_secs_f64())
}

fn run_summary(tenants: &[TenantSpec<CpuIoWorkload>], threads: usize) -> (FleetSummary, f64) {
    let mut sink = NullSink;
    let start = Instant::now();
    let summary = FleetRunner::new(threads).run_fleet_summary(
        tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>,
        &mut sink,
    );
    (summary, start.elapsed().as_secs_f64())
}

fn assert_identical(a: &FleetReport, b: &FleetReport) {
    assert_eq!(a, b, "fleet reports diverged across thread counts");
}

fn emit_json(lines: &[(String, f64)]) {
    let Ok(path) = std::env::var("DASR_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    for (bench, secs) in lines {
        let _ = writeln!(
            file,
            "{{\"bench\":\"{bench}\",\"ns_per_iter\":{:.1},\"iters\":1}}",
            secs * 1.0e9
        );
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (tenants_n, minutes) = if test_mode {
        (8, 2)
    } else if std::env::var("DASR_FULL").is_ok() {
        (128, 12)
    } else {
        (64, 6)
    };
    println!(
        "=== fleet_parallel_scaling: {tenants_n} tenants x {minutes} intervals (Auto policy) ==="
    );
    let tenants = build_fleet(tenants_n, minutes);

    let (reference, sequential_secs) = run(&tenants, 1);
    let mut results = vec![(1usize, sequential_secs)];
    for threads in [2, 4, 8] {
        let (report, secs) = run(&tenants, threads);
        assert_identical(&reference, &report);
        results.push((threads, secs));
    }

    let (summary_ref, summary_sequential_secs) = run_summary(&tenants, 1);
    assert_eq!(
        &summary_ref,
        reference.fleet_summary(),
        "streamed summary diverged from the full run's fold"
    );
    let mut summary_results = vec![(1usize, summary_sequential_secs)];
    for threads in [2, 4, 8] {
        let (summary, secs) = run_summary(&tenants, threads);
        assert_eq!(
            summary, summary_ref,
            "summary diverged at {threads} threads"
        );
        summary_results.push((threads, secs));
    }

    println!("  full mode (reports kept):");
    for &(threads, secs) in &results {
        println!(
            "    threads {threads:>2}: {:>7.2} s  speedup {:>5.2}x",
            secs,
            sequential_secs / secs
        );
    }
    println!("  summary mode (streaming fold):");
    for &(threads, secs) in &summary_results {
        println!(
            "    threads {threads:>2}: {:>7.2} s  speedup {:>5.2}x",
            secs,
            summary_sequential_secs / secs
        );
    }
    println!("  results bit-identical across all thread counts ✓");
    println!("  {}", reference.summary());
    println!("  fleet-wide rule fires (ranked):");
    print!("{}", reference.rule_histogram());

    let mut lines: Vec<(String, f64)> = results
        .iter()
        .map(|&(t, s)| (format!("fleet_parallel_scaling/threads_{t}"), s))
        .collect();
    lines.extend(
        summary_results
            .iter()
            .map(|&(t, s)| (format!("fleet_summary_scaling/threads_{t}"), s)),
    );
    emit_json(&lines);
    if test_mode {
        println!("test fleet_parallel_scaling ... ok");
    }
}
