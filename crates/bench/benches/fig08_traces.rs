//! Figure 8: the four production-derived load traces.

use dasr_bench::table::ascii_series;
use dasr_workloads::Trace;

fn main() {
    println!("=== Figure 8: offered-load traces (req/s per minute) ===");
    for n in 1..=4 {
        let t = Trace::paper(n);
        println!(
            "\n{} — mean {:.0} rps, peak {:.0} rps",
            t.name,
            t.mean_rps(),
            t.peak_rps()
        );
        println!("{}", ascii_series(&t.name, &t.rps, 36, 50));
    }
    println!("paper: trace 1 steady ~100 rps; trace 2 one long burst; trace 3 one short burst; trace 4 many bursts (0-200 rps, 1440 min)");
}
