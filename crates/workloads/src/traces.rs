//! Offered-load traces (paper Figure 8).
//!
//! Each trace gives a target offered load (requests per second) for every
//! minute of the experiment. The paper derives four traces from production
//! workloads, each targeting a demand scenario (§7.1):
//!
//! 1. **steady** — validates that auto-scaling is at least competitive with
//!    a well-chosen static container;
//! 2. **one long burst** — mostly idle, a single sustained burst;
//! 3. **one short burst** — mostly idle, a single brief burst;
//! 4. **many bursts** — frequent short bursts, the stress test.
//!
//! We re-synthesize the shapes at the same scale (0–200 req/s, 1440 min).
//! Traces are deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trapezoidal envelope: 0 outside `[lo, hi)`, ramping linearly to 1 over
/// `ramp` minutes at both edges.
fn trapezoid(i: usize, lo: usize, hi: usize, ramp: usize) -> f64 {
    if i < lo || i >= hi {
        return 0.0;
    }
    let up = (i - lo) as f64 / ramp as f64;
    let down = (hi - i) as f64 / ramp as f64;
    up.min(down).min(1.0)
}

fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    let w = window.max(1);
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(w / 2);
            let hi = (i + w / 2 + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// A per-minute offered-load trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Short name (`trace1`…`trace4` for the paper's shapes).
    pub name: String,
    /// Target requests/second for each minute.
    pub rps: Vec<f64>,
}

impl Trace {
    /// Creates a trace from explicit per-minute targets.
    ///
    /// # Panics
    /// Panics if `rps` is empty or contains negative/non-finite values.
    pub fn new(name: impl Into<String>, rps: Vec<f64>) -> Self {
        assert!(!rps.is_empty(), "trace must have at least one minute");
        assert!(
            rps.iter().all(|v| v.is_finite() && *v >= 0.0),
            "trace values must be finite and non-negative"
        );
        Self {
            name: name.into(),
            rps,
        }
    }

    /// The paper's trace `n` (1–4) at full 1440-minute length.
    ///
    /// # Panics
    /// Panics for `n` outside `1..=4`.
    pub fn paper(n: usize) -> Self {
        Self::paper_with_len(n, 1440)
    }

    /// The paper's trace `n` (1–4) synthesized over `minutes` minutes —
    /// shorter lengths compress the time scale, which the paper itself does
    /// to make the problem harder and the experiments shorter (§7.1).
    pub fn paper_with_len(n: usize, minutes: usize) -> Self {
        assert!(minutes >= 10, "trace too short to be meaningful");
        let mut rng = StdRng::seed_from_u64(0x7ace_0000 + n as u64);
        let m = minutes as f64;
        let rps: Vec<f64> = match n {
            1 => (0..minutes)
                .map(|_| 100.0 + rng.gen_range(-8.0..8.0))
                .collect(),
            2 => {
                // Idle ~5 rps with one long trapezoidal burst
                // (~30%..62% of the trace, ramping over a sixth of it).
                let (lo, hi) = ((0.30 * m) as usize, (0.62 * m) as usize);
                let ramp = ((hi - lo) / 6).max(2);
                (0..minutes)
                    .map(|i| {
                        let base = 5.0 + rng.gen_range(0.0..3.0);
                        let peak = 155.0 + rng.gen_range(-10.0..10.0);
                        base + (peak - base) * trapezoid(i, lo, hi, ramp)
                    })
                    .collect()
            }
            3 => {
                // Idle with one short, roughly triangular burst
                // (~43%..53%).
                let (lo, hi) = ((0.43 * m) as usize, (0.53 * m) as usize);
                let ramp = ((hi - lo) / 3).max(2);
                (0..minutes)
                    .map(|i| {
                        let base = 5.0 + rng.gen_range(0.0..3.0);
                        let peak = 180.0 + rng.gen_range(-10.0..10.0);
                        base + (peak - base) * trapezoid(i, lo, hi, ramp)
                    })
                    .collect()
            }
            4 => {
                // Many short bursts of varying height over a low baseline.
                let mut rps = vec![0.0; minutes];
                for slot in rps.iter_mut() {
                    *slot = 15.0 + rng.gen_range(0.0..5.0);
                }
                let bursts = (minutes / 45).max(4);
                for _ in 0..bursts {
                    let start = rng.gen_range(0..minutes);
                    let len = rng.gen_range(minutes / 140 + 2..minutes / 24 + 4);
                    let height = rng.gen_range(60.0..200.0);
                    for slot in rps.iter_mut().skip(start).take(len) {
                        *slot = height + rng.gen_range(-8.0..8.0);
                    }
                }
                rps
            }
            other => panic!("paper trace {other} does not exist (1..=4)"),
        };
        // Real production load ramps rather than stepping; a short moving
        // average softens the synthetic edges (and gives trend detection
        // something to see, as in the real traces).
        let smoothed = moving_average(&rps, 3);
        Self::new(format!("trace{n}"), smoothed)
    }

    /// Length in minutes.
    pub fn minutes(&self) -> usize {
        self.rps.len()
    }

    /// Target offered load for `minute` (clamped to the last minute).
    pub fn target_rps(&self, minute: usize) -> f64 {
        let idx = minute.min(self.rps.len() - 1);
        self.rps[idx]
    }

    /// Peak offered load.
    pub fn peak_rps(&self) -> f64 {
        self.rps.iter().copied().fold(0.0, f64::max)
    }

    /// Mean offered load.
    pub fn mean_rps(&self) -> f64 {
        self.rps.iter().sum::<f64>() / self.rps.len() as f64
    }

    /// Resamples the trace to `minutes` minutes by linear interpolation,
    /// preserving the shape (time-scale compression, §7.1).
    pub fn resampled(&self, minutes: usize) -> Trace {
        assert!(minutes >= 2, "resample target too short");
        let n = self.rps.len();
        let rps = (0..minutes)
            .map(|i| {
                let pos = i as f64 / (minutes - 1) as f64 * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                self.rps[lo] * (1.0 - frac) + self.rps[hi.min(n - 1)] * frac
            })
            .collect();
        Trace::new(self.name.clone(), rps)
    }

    /// Scales every minute's target by `factor`.
    pub fn scaled(&self, factor: f64) -> Trace {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        Trace::new(
            self.name.clone(),
            self.rps.iter().map(|v| v * factor).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_traces_have_documented_shapes() {
        let t1 = Trace::paper(1);
        assert_eq!(t1.minutes(), 1440);
        assert!(t1.rps.iter().all(|&v| (80.0..=120.0).contains(&v)));

        let t2 = Trace::paper(2);
        // Long burst: a substantial fraction of minutes are high.
        let high = t2.rps.iter().filter(|&&v| v > 100.0).count();
        assert!(
            (0.25..0.40).contains(&(high as f64 / 1440.0)),
            "long burst covers {high} minutes"
        );

        let t3 = Trace::paper(3);
        let high3 = t3.rps.iter().filter(|&&v| v > 100.0).count();
        assert!(
            (0.03..0.10).contains(&(high3 as f64 / 1440.0)),
            "short burst covers {high3} minutes"
        );

        let t4 = Trace::paper(4);
        // Multiple separated bursts: count rising edges above 50.
        let edges = t4
            .rps
            .windows(2)
            .filter(|w| w[0] <= 50.0 && w[1] > 50.0)
            .count();
        assert!(edges >= 3, "trace 4 must have several bursts, got {edges}");
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(Trace::paper(2), Trace::paper(2));
        assert_ne!(Trace::paper(2), Trace::paper(3));
    }

    #[test]
    fn target_rps_clamps_past_end() {
        let t = Trace::new("t", vec![1.0, 2.0, 3.0]);
        assert_eq!(t.target_rps(0), 1.0);
        assert_eq!(t.target_rps(2), 3.0);
        assert_eq!(t.target_rps(99), 3.0);
    }

    #[test]
    fn resample_preserves_range_and_shape() {
        let t = Trace::paper(2);
        let short = t.resampled(180);
        assert_eq!(short.minutes(), 180);
        assert!(short.peak_rps() <= t.peak_rps() + 1e-9);
        // The burst survives compression.
        assert!(short.peak_rps() > 120.0);
        let high = short.rps.iter().filter(|&&v| v > 100.0).count();
        assert!(
            (0.2..0.45).contains(&(high as f64 / 180.0)),
            "burst fraction preserved: {high}/180"
        );
    }

    #[test]
    fn scaled_multiplies() {
        let t = Trace::new("t", vec![10.0, 20.0]);
        assert_eq!(t.scaled(0.5).rps, vec![5.0, 10.0]);
    }

    #[test]
    fn stats() {
        let t = Trace::new("t", vec![0.0, 10.0, 20.0]);
        assert_eq!(t.peak_rps(), 20.0);
        assert_eq!(t.mean_rps(), 10.0);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_paper_trace_panics() {
        let _ = Trace::paper(5);
    }

    #[test]
    #[should_panic(expected = "at least one minute")]
    fn empty_trace_panics() {
        let _ = Trace::new("t", vec![]);
    }
}
