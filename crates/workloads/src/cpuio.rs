//! CPUIO — the paper's synthetic micro-benchmark (§7.1).
//!
//! Generates queries that are CPU-, disk-I/O- and/or log-I/O-intensive in a
//! configurable mix, with the working set controlled by a hotspot access
//! distribution. This is the workload used for Figures 9, 11 and 14.

use crate::dist::{bounded_normal, weighted_index, Hotspot};
use crate::Workload;
use dasr_engine::request::RequestBuilder;
use dasr_engine::RequestSpec;
use rand::rngs::StdRng;
use rand::Rng;

/// CPUIO parameters.
#[derive(Debug, Clone, Copy)]
pub struct CpuIoConfig {
    /// Mean CPU per request, µs (per-request values are ±50% normal).
    pub cpu_us_mean: f64,
    /// Page accesses per balanced request.
    pub pages_per_request: u32,
    /// Log bytes per balanced request.
    pub log_bytes: u32,
    /// Total database pages.
    pub db_pages: u64,
    /// Working-set (hot) pages.
    pub hot_pages: u64,
    /// Probability an access lands in the working set.
    pub hot_prob: f64,
    /// Mix weights for (cpu-heavy, io-heavy, log-heavy, balanced) queries.
    pub mix: [f64; 4],
    /// Probability a request takes a memory grant (analytic queries).
    pub grant_prob: f64,
    /// Grant size in MB when taken.
    pub grant_mb: u32,
}

impl Default for CpuIoConfig {
    fn default() -> Self {
        Self {
            cpu_us_mean: 60_000.0,
            pages_per_request: 16,
            log_bytes: 2_048,
            // 8 GB database, 3 GB working set (Figure 14 uses a ~3 GB
            // working set), 8 KB pages.
            db_pages: 8 * 131_072,
            hot_pages: 3 * 131_072,
            hot_prob: 0.95,
            mix: [0.3, 0.3, 0.1, 0.3],
            grant_prob: 0.02,
            grant_mb: 64,
        }
    }
}

impl CpuIoConfig {
    /// A small configuration for fast tests: tiny working set, light
    /// requests.
    pub fn small() -> Self {
        Self {
            cpu_us_mean: 5_000.0,
            pages_per_request: 8,
            log_bytes: 1_024,
            db_pages: 16_384, // 128 MB
            hot_pages: 4_096, // 32 MB
            hot_prob: 0.95,
            mix: [0.3, 0.3, 0.1, 0.3],
            grant_prob: 0.02,
            grant_mb: 16,
        }
    }

    /// A CPU-dominated configuration (for per-dimension scaling studies).
    pub fn cpu_heavy() -> Self {
        Self {
            mix: [1.0, 0.0, 0.0, 0.0],
            ..Self::default()
        }
    }

    /// An I/O-dominated configuration.
    pub fn io_heavy() -> Self {
        Self {
            mix: [0.0, 1.0, 0.0, 0.0],
            hot_prob: 0.5, // many cold accesses => real disk demand
            ..Self::default()
        }
    }
}

/// The CPUIO workload generator.
#[derive(Debug, Clone)]
pub struct CpuIoWorkload {
    cfg: CpuIoConfig,
    hotspot: Hotspot,
}

impl CpuIoWorkload {
    /// Creates the workload from a configuration.
    pub fn new(cfg: CpuIoConfig) -> Self {
        let hotspot = Hotspot::new(cfg.db_pages, cfg.hot_pages, cfg.hot_prob);
        Self { cfg, hotspot }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpuIoConfig {
        &self.cfg
    }

    fn cpu_us(&self, rng: &mut StdRng, scale: f64) -> u64 {
        let mean = self.cfg.cpu_us_mean * scale;
        bounded_normal(rng, mean, mean * 0.25, mean * 0.25, mean * 3.0) as u64
    }
}

impl Workload for CpuIoWorkload {
    fn name(&self) -> &'static str {
        "cpuio"
    }

    fn hot_pages(&self) -> u64 {
        self.cfg.hot_pages
    }

    fn next_request(&mut self, rng: &mut StdRng) -> RequestSpec {
        let kind = weighted_index(rng, &self.cfg.mix);
        let mut b = RequestBuilder::new();
        if rng.gen_bool(self.cfg.grant_prob) {
            b = b.grant(self.cfg.grant_mb);
        }
        match kind {
            // CPU-heavy: big burst, few pages.
            0 => {
                b = b.cpu(self.cpu_us(rng, 1.5));
                for _ in 0..self.cfg.pages_per_request / 4 {
                    b = b.read(self.hotspot.sample(rng));
                }
            }
            // I/O-heavy: light CPU, many pages interleaved with small
            // bursts (index lookups between fetches).
            1 => {
                for _ in 0..self.cfg.pages_per_request * 2 {
                    b = b.read(self.hotspot.sample(rng));
                }
                b = b.cpu(self.cpu_us(rng, 0.25));
            }
            // Log-heavy: writes plus a large log append.
            2 => {
                b = b.cpu(self.cpu_us(rng, 0.5));
                for _ in 0..self.cfg.pages_per_request / 2 {
                    b = b.write(self.hotspot.sample(rng));
                }
                b = b.log(self.cfg.log_bytes * 16);
            }
            // Balanced.
            _ => {
                b = b.cpu(self.cpu_us(rng, 1.0));
                for i in 0..self.cfg.pages_per_request {
                    let page = self.hotspot.sample(rng);
                    b = if i % 5 == 4 {
                        b.write(page)
                    } else {
                        b.read(page)
                    };
                }
                b = b.log(self.cfg.log_bytes);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_engine::Op;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn generates_nonempty_requests() {
        let mut w = CpuIoWorkload::new(CpuIoConfig::small());
        let mut r = rng();
        for _ in 0..100 {
            let spec = w.next_request(&mut r);
            assert!(!spec.ops.is_empty());
        }
    }

    #[test]
    fn mean_cpu_tracks_config() {
        let mut w = CpuIoWorkload::new(CpuIoConfig {
            mix: [0.0, 0.0, 0.0, 1.0], // balanced only
            grant_prob: 0.0,
            ..CpuIoConfig::small()
        });
        let mut r = rng();
        let n = 2_000;
        let total: u64 = (0..n).map(|_| w.next_request(&mut r).total_cpu_us()).sum();
        let mean = total as f64 / n as f64;
        let want = w.config().cpu_us_mean;
        assert!(
            (mean - want).abs() < want * 0.1,
            "mean {mean} vs want {want}"
        );
    }

    #[test]
    fn io_heavy_has_more_pages_than_cpu_heavy() {
        let mut r = rng();
        let mut io = CpuIoWorkload::new(CpuIoConfig::io_heavy());
        let mut cpu = CpuIoWorkload::new(CpuIoConfig::cpu_heavy());
        let pages = |w: &mut CpuIoWorkload, r: &mut StdRng| -> usize {
            (0..200).map(|_| w.next_request(r).page_accesses()).sum()
        };
        assert!(pages(&mut io, &mut r) > 4 * pages(&mut cpu, &mut r));
    }

    #[test]
    fn accesses_respect_hotspot() {
        let mut w = CpuIoWorkload::new(CpuIoConfig::small());
        let mut r = rng();
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for op in w.next_request(&mut r).ops {
                if let Op::PageAccess { page, .. } = op {
                    total += 1;
                    if page < w.config().hot_pages {
                        hot += 1;
                    }
                }
            }
        }
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.9, "hot fraction {frac}");
    }

    #[test]
    fn grants_appear_at_configured_rate() {
        let mut w = CpuIoWorkload::new(CpuIoConfig {
            grant_prob: 0.5,
            ..CpuIoConfig::small()
        });
        let mut r = rng();
        let with_grant = (0..1_000)
            .filter(|_| {
                w.next_request(&mut r)
                    .ops
                    .iter()
                    .any(|op| matches!(op, Op::MemoryGrant { .. }))
            })
            .count();
        assert!((400..600).contains(&with_grant), "{with_grant}");
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = || {
            let mut w = CpuIoWorkload::new(CpuIoConfig::small());
            let mut r = rng();
            (0..50).map(|_| w.next_request(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
