//! Open-loop arrival generation bound to a trace (§7.1).
//!
//! "At every step, the workload generator reads the number of requests from
//! the trace to set the target number of requests/sec … and maintains the
//! offered load as close as possible to the specified target." We realize
//! that as a Poisson arrival process whose rate follows the trace minute by
//! minute.

use crate::dist::exponential;
use crate::traces::Trace;
use crate::Workload;
use dasr_engine::{Engine, RequestSpec, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives a workload through a trace, submitting Poisson arrivals to the
/// engine one minute at a time.
pub struct TraceDriver<W: Workload> {
    trace: Trace,
    workload: W,
    rng: StdRng,
}

impl<W: Workload> TraceDriver<W> {
    /// Creates a driver; all randomness derives from `seed`.
    pub fn new(trace: Trace, workload: W, seed: u64) -> Self {
        Self {
            trace,
            workload,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The trace being driven.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The workload's name.
    pub fn workload_name(&self) -> &'static str {
        self.workload.name()
    }

    /// Number of minutes in the trace.
    pub fn minutes(&self) -> usize {
        self.trace.minutes()
    }

    /// Generates the arrivals for `minute` (0-based) without an engine —
    /// returns `(arrival_time, spec)` pairs.
    pub fn arrivals_for_minute(&mut self, minute: usize) -> Vec<(SimTime, RequestSpec)> {
        let rate = self.trace.target_rps(minute);
        let start_us = minute as u64 * 60_000_000;
        let mut out = Vec::new();
        if rate < 1e-3 {
            return out;
        }
        // Exponential gaps in seconds at `rate` events/s.
        let mut t = exponential(&mut self.rng, rate);
        while t < 60.0 {
            let at = SimTime::from_micros(start_us + (t * 1_000_000.0) as u64);
            out.push((at, self.workload.next_request(&mut self.rng)));
            t += exponential(&mut self.rng, rate);
        }
        out
    }

    /// Submits the arrivals for `minute` directly into `engine`.
    ///
    /// # Panics
    /// Panics if the engine's clock is already past the start of `minute`.
    pub fn submit_minute(&mut self, minute: usize, engine: &mut Engine) -> usize {
        let arrivals = self.arrivals_for_minute(minute);
        let n = arrivals.len();
        for (at, spec) in arrivals {
            engine.submit_at(at, spec);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpuio::{CpuIoConfig, CpuIoWorkload};

    fn driver(rps: f64) -> TraceDriver<CpuIoWorkload> {
        TraceDriver::new(
            Trace::new("t", vec![rps; 10]),
            CpuIoWorkload::new(CpuIoConfig::small()),
            42,
        )
    }

    #[test]
    fn arrival_count_tracks_rate() {
        let mut d = driver(50.0);
        let total: usize = (0..10).map(|m| d.arrivals_for_minute(m).len()).sum();
        // 50 rps * 600 s = 30000 expected; Poisson sd ~ 173.
        assert!(
            (29_000..31_000).contains(&total),
            "got {total} arrivals for 50 rps x 10 min"
        );
    }

    #[test]
    fn arrivals_fall_within_their_minute() {
        let mut d = driver(20.0);
        let arrivals = d.arrivals_for_minute(3);
        for (at, _) in &arrivals {
            let us = at.as_micros();
            assert!((180_000_000..240_000_000).contains(&us), "at {us}");
        }
    }

    #[test]
    fn arrivals_are_sorted() {
        let mut d = driver(100.0);
        let arrivals = d.arrivals_for_minute(0);
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn zero_rate_minute_is_silent() {
        let mut d = driver(0.0);
        assert!(d.arrivals_for_minute(0).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let collect = || {
            let mut d = driver(30.0);
            d.arrivals_for_minute(0)
                .into_iter()
                .map(|(t, s)| (t, s.ops.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn submit_minute_feeds_engine() {
        use dasr_containers::ResourceVector;
        use dasr_engine::EngineConfig;

        let mut d = driver(10.0);
        let mut engine = Engine::new(
            EngineConfig::default(),
            ResourceVector::new(2.0, 256.0, 400.0, 20.0),
        );
        let n = d.submit_minute(0, &mut engine);
        engine.run_until(SimTime::from_mins(1));
        let stats = engine.end_interval();
        assert_eq!(stats.arrivals as usize, n);
        assert!(stats.completed > 0);
    }
}
