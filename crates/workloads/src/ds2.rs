//! DS2-lite — a Dell-DVD-Store-style web-shop mix (§7.1).
//!
//! Browse-dominated read traffic with a purchase path that writes and logs.
//! Compared to CPUIO it has a larger cold fraction (catalog scans), making
//! disk I/O a first-class resource dimension.

use crate::dist::{bounded_normal, weighted_index, Hotspot};
use crate::Workload;
use dasr_engine::request::RequestBuilder;
use dasr_engine::RequestSpec;
use rand::rngs::StdRng;
use rand::Rng;

/// DS2-lite parameters.
#[derive(Debug, Clone, Copy)]
pub struct Ds2Config {
    /// Total database pages (catalog + customers + orders).
    pub db_pages: u64,
    /// Hot pages (bestsellers, active sessions).
    pub hot_pages: u64,
    /// Probability an access is hot.
    pub hot_prob: f64,
    /// Mix weights for (browse, login, purchase).
    pub mix: [f64; 3],
    /// CPU scale factor.
    pub cpu_scale: f64,
    /// Number of inventory rows guarded by locks on the purchase path.
    pub inventory_locks: u32,
}

impl Default for Ds2Config {
    fn default() -> Self {
        Self {
            db_pages: 6 * 131_072, // 6 GB
            hot_pages: 98_304,     // 768 MB
            hot_prob: 0.80,
            mix: [0.60, 0.25, 0.15],
            cpu_scale: 1.0,
            inventory_locks: 512,
        }
    }
}

impl Ds2Config {
    /// Small configuration for fast tests.
    pub fn small() -> Self {
        Self {
            db_pages: 8_192,
            hot_pages: 2_048,
            hot_prob: 0.85,
            cpu_scale: 0.25,
            inventory_locks: 32,
            ..Self::default()
        }
    }
}

/// The DS2-lite workload generator.
#[derive(Debug, Clone)]
pub struct Ds2Workload {
    cfg: Ds2Config,
    hotspot: Hotspot,
}

impl Ds2Workload {
    /// Creates the workload.
    pub fn new(cfg: Ds2Config) -> Self {
        assert!(cfg.inventory_locks > 0, "need at least one inventory lock");
        let hotspot = Hotspot::new(cfg.db_pages, cfg.hot_pages, cfg.hot_prob);
        Self { cfg, hotspot }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Ds2Config {
        &self.cfg
    }

    fn cpu(&self, rng: &mut StdRng, mean_us: f64) -> u64 {
        let mean = mean_us * self.cfg.cpu_scale;
        bounded_normal(rng, mean, mean * 0.3, mean * 0.2, mean * 3.0) as u64
    }

    fn browse(&self, rng: &mut StdRng) -> RequestSpec {
        // Catalog search: CPU for matching plus a batch of reads, some cold.
        let mut b = RequestBuilder::new().cpu(self.cpu(rng, 8_000.0));
        for _ in 0..rng.gen_range(8..=16) {
            b = b.read(self.hotspot.sample(rng));
        }
        b.build()
    }

    fn login(&self, rng: &mut StdRng) -> RequestSpec {
        RequestBuilder::new()
            .cpu(self.cpu(rng, 3_000.0))
            .read(self.hotspot.sample(rng))
            .read(self.hotspot.sample(rng))
            .read(self.hotspot.sample(rng))
            .write(self.hotspot.sample(rng)) // session row
            .log(512)
            .build()
    }

    fn purchase(&self, rng: &mut StdRng) -> RequestSpec {
        let lock = rng.gen_range(0..self.cfg.inventory_locks);
        let mut b = RequestBuilder::new()
            .lock(lock, true)
            .cpu(self.cpu(rng, 5_000.0))
            // Payment-gateway round trip while holding the inventory lock.
            .think(rng.gen_range(5_000..15_000));
        for _ in 0..rng.gen_range(4..=8) {
            b = b.read(self.hotspot.sample(rng));
        }
        b.write(self.hotspot.sample(rng))
            .write(self.hotspot.sample(rng))
            .log(2_048)
            .build()
    }
}

impl Workload for Ds2Workload {
    fn name(&self) -> &'static str {
        "ds2"
    }

    fn hot_pages(&self) -> u64 {
        self.cfg.hot_pages
    }

    fn next_request(&mut self, rng: &mut StdRng) -> RequestSpec {
        match weighted_index(rng, &self.cfg.mix) {
            0 => self.browse(rng),
            1 => self.login(rng),
            _ => self.purchase(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_engine::Op;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn browse_dominates_mix() {
        let mut w = Ds2Workload::new(Ds2Config::small());
        let mut r = rng();
        let n = 5_000;
        let mut read_only = 0usize;
        for _ in 0..n {
            let spec = w.next_request(&mut r);
            if !spec.ops.iter().any(|op| {
                matches!(op, Op::LogWrite { .. } | Op::LockAcquire { .. })
                    || matches!(op, Op::PageAccess { write: true, .. })
            }) {
                read_only += 1;
            }
        }
        let frac = read_only as f64 / n as f64;
        assert!((0.55..0.65).contains(&frac), "browse fraction {frac}");
    }

    #[test]
    fn purchases_lock_and_log() {
        let w = Ds2Workload::new(Ds2Config::small());
        let mut r = rng();
        let spec = w.purchase(&mut r);
        assert!(matches!(
            spec.ops[0],
            Op::LockAcquire {
                exclusive: true,
                ..
            }
        ));
        assert!(spec.ops.iter().any(|op| matches!(op, Op::LogWrite { .. })));
    }

    #[test]
    fn cold_fraction_is_substantial() {
        let mut w = Ds2Workload::new(Ds2Config::default());
        let mut r = rng();
        let mut cold = 0usize;
        let mut total = 0usize;
        for _ in 0..2_000 {
            for op in w.next_request(&mut r).ops {
                if let Op::PageAccess { page, .. } = op {
                    total += 1;
                    if page >= w.config().hot_pages {
                        cold += 1;
                    }
                }
            }
        }
        let frac = cold as f64 / total as f64;
        assert!((0.15..0.25).contains(&frac), "cold fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let gen = || {
            let mut w = Ds2Workload::new(Ds2Config::small());
            let mut r = rng();
            (0..50).map(|_| w.next_request(&mut r)).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
