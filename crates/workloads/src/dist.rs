//! Samplers used by the workload generators.
//!
//! Implemented in-repo (rather than pulling `rand_distr`) to keep the
//! dependency set minimal; each sampler is exercised against its analytic
//! moments in tests.

use rand::Rng;

/// Samples an exponential inter-arrival gap with the given `rate` (events
/// per unit time). Returns the gap in the same time unit.
///
/// # Panics
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Samples from a normal distribution via Box–Muller, truncated to
/// `[lo, hi]` by clamping.
pub fn bounded_normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    assert!(std_dev >= 0.0, "std_dev must be non-negative");
    assert!(lo <= hi, "invalid bounds");
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + std_dev * z).clamp(lo, hi)
}

/// A hotspot page sampler: with probability `hot_prob` draws uniformly from
/// the first `hot_pages` pages (the working set), otherwise uniformly from
/// the cold remainder. This is the paper's "hotspot in data accesses"
/// working-set control (§7.1).
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Total pages in the database.
    pub total_pages: u64,
    /// Pages in the hot set (must be ≤ `total_pages`).
    pub hot_pages: u64,
    /// Probability of drawing from the hot set.
    pub hot_prob: f64,
}

impl Hotspot {
    /// Creates a hotspot sampler.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(total_pages: u64, hot_pages: u64, hot_prob: f64) -> Self {
        assert!(total_pages > 0, "need at least one page");
        assert!(hot_pages > 0 && hot_pages <= total_pages, "invalid hot set");
        assert!((0.0..=1.0).contains(&hot_prob), "invalid probability");
        Self {
            total_pages,
            hot_pages,
            hot_prob,
        }
    }

    /// Samples a page id.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.hot_pages == self.total_pages || rng.gen_bool(self.hot_prob) {
            rng.gen_range(0..self.hot_pages)
        } else {
            rng.gen_range(self.hot_pages..self.total_pages)
        }
    }
}

/// Picks an index from `weights` proportionally (roulette wheel).
///
/// # Panics
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDA5A)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let rate = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 100.0) > 0.0);
        }
    }

    #[test]
    fn bounded_normal_moments_and_bounds() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| bounded_normal(&mut r, 10.0, 2.0, 0.0, 20.0))
            .collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|&s| (0.0..=20.0).contains(&s)));
    }

    #[test]
    fn hotspot_respects_probability() {
        let mut r = rng();
        let h = Hotspot::new(1_000, 100, 0.95);
        let n = 100_000;
        let hot_hits = (0..n).filter(|_| h.sample(&mut r) < 100).count();
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "hot fraction {frac}");
    }

    #[test]
    fn hotspot_all_hot() {
        let mut r = rng();
        let h = Hotspot::new(10, 10, 0.0);
        for _ in 0..100 {
            assert!(h.sample(&mut r) < 10);
        }
    }

    #[test]
    fn weighted_index_proportions() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid hot set")]
    fn hotspot_validation() {
        let _ = Hotspot::new(10, 11, 0.5);
    }

    #[test]
    #[should_panic(expected = "sum to a positive")]
    fn zero_weights_panic() {
        let mut r = rng();
        let _ = weighted_index(&mut r, &[0.0, 0.0]);
    }
}
