//! TPC-C-lite — an order-entry transaction mix (§7.1).
//!
//! Five transaction types with the standard TPC-C frequencies over a small
//! number of warehouses. Payment updates the *warehouse* row and NewOrder /
//! Delivery update *district* rows; with few warehouses these rows are hot,
//! and under load the workload becomes **lock-bound** — the Figure 13
//! scenario where >90% of wait time is lock waits and adding resources
//! cannot improve latency.

use crate::dist::{bounded_normal, weighted_index, Hotspot};
use crate::Workload;
use dasr_engine::request::RequestBuilder;
use dasr_engine::RequestSpec;
use rand::rngs::StdRng;
use rand::Rng;

/// Lock-id layout: warehouse locks are `0..warehouses`, district locks are
/// `1000 + w*10 + d`.
const DISTRICT_BASE: u32 = 1_000;

/// TPC-C-lite parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Number of warehouses (fewer ⇒ hotter locks).
    pub warehouses: u32,
    /// Total database pages.
    pub db_pages: u64,
    /// Hot (frequently accessed) pages.
    pub hot_pages: u64,
    /// Probability an access lands in the hot set.
    pub hot_prob: f64,
    /// CPU scale factor applied to every transaction's bursts.
    pub cpu_scale: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 4,
            db_pages: 4 * 131_072, // 4 GB
            hot_pages: 131_072,    // 1 GB hot
            hot_prob: 0.9,
            cpu_scale: 1.0,
        }
    }
}

impl TpccConfig {
    /// Small configuration for fast tests.
    pub fn small() -> Self {
        Self {
            warehouses: 2,
            db_pages: 8_192,
            hot_pages: 2_048,
            hot_prob: 0.9,
            cpu_scale: 0.25,
        }
    }
}

/// The TPC-C-lite workload generator.
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    cfg: TpccConfig,
    hotspot: Hotspot,
}

/// Standard TPC-C mix: NewOrder 45%, Payment 43%, OrderStatus 4%,
/// Delivery 4%, StockLevel 4%.
const MIX: [f64; 5] = [0.45, 0.43, 0.04, 0.04, 0.04];

impl TpccWorkload {
    /// Creates the workload.
    pub fn new(cfg: TpccConfig) -> Self {
        assert!(cfg.warehouses > 0, "need at least one warehouse");
        let hotspot = Hotspot::new(cfg.db_pages, cfg.hot_pages, cfg.hot_prob);
        Self { cfg, hotspot }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    fn cpu(&self, rng: &mut StdRng, mean_us: f64) -> u64 {
        let mean = mean_us * self.cfg.cpu_scale;
        bounded_normal(rng, mean, mean * 0.2, mean * 0.3, mean * 2.5) as u64
    }

    fn warehouse_lock(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(0..self.cfg.warehouses)
    }

    fn district_lock(&self, rng: &mut StdRng) -> u32 {
        let w = rng.gen_range(0..self.cfg.warehouses);
        DISTRICT_BASE + w * 10 + rng.gen_range(0..10)
    }

    /// In-transaction client round trip (the application talks to the user
    /// or another service while holding locks — the source of Figure 13's
    /// application-level lock bottleneck).
    fn round_trip(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(8_000..18_000)
    }

    fn new_order(&self, rng: &mut StdRng) -> RequestSpec {
        let mut b = RequestBuilder::new()
            .lock(self.district_lock(rng), true)
            .cpu(self.cpu(rng, 4_000.0))
            .think(self.round_trip(rng));
        let items = rng.gen_range(5..=15);
        for _ in 0..items {
            b = b.read(self.hotspot.sample(rng));
            b = b.write(self.hotspot.sample(rng));
        }
        b.cpu(self.cpu(rng, 2_000.0)).log(4_096).build()
    }

    fn payment(&self, rng: &mut StdRng) -> RequestSpec {
        RequestBuilder::new()
            .lock(self.warehouse_lock(rng), true)
            .cpu(self.cpu(rng, 1_500.0))
            .read(self.hotspot.sample(rng))
            .think(self.round_trip(rng))
            .write(self.hotspot.sample(rng))
            .write(self.hotspot.sample(rng))
            .cpu(self.cpu(rng, 1_000.0))
            .log(1_024)
            .build()
    }

    fn order_status(&self, rng: &mut StdRng) -> RequestSpec {
        let mut b = RequestBuilder::new().cpu(self.cpu(rng, 1_500.0));
        for _ in 0..8 {
            b = b.read(self.hotspot.sample(rng));
        }
        b.build()
    }

    fn delivery(&self, rng: &mut StdRng) -> RequestSpec {
        let mut b = RequestBuilder::new()
            .lock(self.district_lock(rng), true)
            .cpu(self.cpu(rng, 3_000.0));
        for _ in 0..12 {
            b = b.write(self.hotspot.sample(rng));
        }
        b.log(2_048).build()
    }

    fn stock_level(&self, rng: &mut StdRng) -> RequestSpec {
        let mut b = RequestBuilder::new().cpu(self.cpu(rng, 6_000.0));
        for _ in 0..30 {
            b = b.read(self.hotspot.sample(rng));
        }
        b.build()
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn hot_pages(&self) -> u64 {
        self.cfg.hot_pages
    }

    fn next_request(&mut self, rng: &mut StdRng) -> RequestSpec {
        match weighted_index(rng, &MIX) {
            0 => self.new_order(rng),
            1 => self.payment(rng),
            2 => self.order_status(rng),
            3 => self.delivery(rng),
            _ => self.stock_level(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_engine::Op;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn mix_frequencies_are_respected() {
        let mut w = TpccWorkload::new(TpccConfig::small());
        let mut r = rng();
        let n = 10_000;
        let mut with_warehouse_lock = 0usize;
        let mut with_district_lock = 0usize;
        let mut read_only = 0usize;
        for _ in 0..n {
            let spec = w.next_request(&mut r);
            let mut has_w = false;
            let mut has_d = false;
            let mut has_log = false;
            for op in &spec.ops {
                match op {
                    Op::LockAcquire { lock, .. } if *lock < DISTRICT_BASE => has_w = true,
                    Op::LockAcquire { .. } => has_d = true,
                    Op::LogWrite { .. } => has_log = true,
                    _ => {}
                }
            }
            if has_w {
                with_warehouse_lock += 1;
            }
            if has_d {
                with_district_lock += 1;
            }
            if !has_log && !has_w && !has_d {
                read_only += 1;
            }
        }
        // Payment ≈ 43%, NewOrder+Delivery ≈ 49%, OrderStatus+StockLevel ≈ 8%.
        assert!((0.40..0.46).contains(&(with_warehouse_lock as f64 / n as f64)));
        assert!((0.45..0.53).contains(&(with_district_lock as f64 / n as f64)));
        assert!((0.05..0.11).contains(&(read_only as f64 / n as f64)));
    }

    #[test]
    fn warehouse_locks_are_few_and_hot() {
        let mut w = TpccWorkload::new(TpccConfig {
            warehouses: 2,
            ..TpccConfig::small()
        });
        let mut r = rng();
        let mut locks = std::collections::HashSet::new();
        for _ in 0..2_000 {
            for op in w.next_request(&mut r).ops {
                if let Op::LockAcquire { lock, .. } = op {
                    if lock < DISTRICT_BASE {
                        locks.insert(lock);
                    }
                }
            }
        }
        assert_eq!(locks.len(), 2, "exactly the configured warehouses");
    }

    #[test]
    fn transactions_write_log_when_updating() {
        let w = TpccWorkload::new(TpccConfig::small());
        let mut r = rng();
        let spec = w.payment(&mut r);
        assert!(spec.ops.iter().any(|op| matches!(op, Op::LogWrite { .. })));
        let ro = w.order_status(&mut r);
        assert!(!ro.ops.iter().any(|op| matches!(op, Op::LogWrite { .. })));
    }

    #[test]
    fn cpu_scale_shrinks_bursts() {
        let mut r1 = rng();
        let mut r2 = rng();
        let big = TpccWorkload::new(TpccConfig::default());
        let small = TpccWorkload::new(TpccConfig {
            cpu_scale: 0.1,
            ..TpccConfig::default()
        });
        let b: u64 = (0..200).map(|_| big.payment(&mut r1).total_cpu_us()).sum();
        let s: u64 = (0..200)
            .map(|_| small.payment(&mut r2).total_cpu_us())
            .sum();
        assert!(s * 5 < b, "scaled CPU {s} should be well below {b}");
    }

    #[test]
    #[should_panic(expected = "at least one warehouse")]
    fn zero_warehouses_panics() {
        let _ = TpccWorkload::new(TpccConfig {
            warehouses: 0,
            ..TpccConfig::small()
        });
    }
}
