//! # dasr-workloads — benchmark workloads, traces and arrival processes
//!
//! The paper drives its evaluation (§7.1) with three workload families under
//! time-varying offered load derived from production traces:
//!
//! - **CPUIO** ([`cpuio`]) — a micro-benchmark generating queries that are
//!   CPU-, disk-I/O- and/or log-I/O-intensive, with a controllable hotspot
//!   working set;
//! - **TPC-C-lite** ([`tpcc`]) — five transaction types over a small number
//!   of warehouses; the hot warehouse rows create the *application-level
//!   lock bottleneck* of Figure 13;
//! - **DS2-lite** ([`ds2`]) — a Dell-DVD-Store-style browse/login/purchase
//!   mix.
//!
//! [`traces`] re-synthesizes the four production-derived load shapes of
//! Figure 8 (steady, one long burst, one short burst, many bursts), and
//! [`arrivals`] turns a trace + workload into an open-loop Poisson arrival
//! stream for the engine. [`dist`] holds the needed samplers (exponential,
//! Zipf-like hotspot, bounded normal) so the external dependency set stays
//! minimal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod arrivals;
pub mod cpuio;
pub mod dist;
pub mod ds2;
pub mod tpcc;
pub mod traces;

pub use arrivals::TraceDriver;
pub use cpuio::{CpuIoConfig, CpuIoWorkload};
pub use ds2::{Ds2Config, Ds2Workload};
pub use tpcc::{TpccConfig, TpccWorkload};
pub use traces::Trace;

use dasr_engine::RequestSpec;
use rand::rngs::StdRng;

/// A workload: a deterministic (given the RNG) source of request specs.
pub trait Workload {
    /// Short name for reports (`cpuio`, `tpcc`, `ds2`).
    fn name(&self) -> &'static str;

    /// Draws the next request.
    fn next_request(&mut self, rng: &mut StdRng) -> RequestSpec;

    /// Size of the workload's hot set in pages (page ids `0..hot_pages()`),
    /// used to prewarm the buffer pool when simulating an already-running
    /// database. Defaults to 0 (no prewarm).
    fn hot_pages(&self) -> u64 {
        0
    }
}
