//! Property-based tests for the robust-statistics substrate.

use dasr_stats::{
    average_ranks, median, pearson, percentile, percentile_interpolated, spearman, theil_sen, Cdf,
    ExactSum, P2Quantile, TheilSen, TokenBucket,
};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, 1..max_len)
}

proptest! {
    /// The median lies within the sample range.
    #[test]
    fn median_within_range(v in finite_vec(200)) {
        let m = median(&v).unwrap();
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    /// Nearest-rank percentiles are monotone in p and are sample elements.
    #[test]
    fn percentile_monotone_and_elemental(v in finite_vec(100), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&v, lo).unwrap();
        let b = percentile(&v, hi).unwrap();
        prop_assert!(a <= b);
        prop_assert!(v.contains(&a));
        prop_assert!(v.contains(&b));
    }

    /// Interpolated percentiles are bounded by min/max.
    #[test]
    fn interpolated_bounded(v in finite_vec(100), p in 0.0..100.0f64) {
        let q = percentile_interpolated(&v, p).unwrap();
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
    }

    /// Theil–Sen recovers the slope of a clean line exactly (up to fp error)
    /// regardless of intercept and spacing.
    #[test]
    fn theil_sen_exact_on_lines(
        slope in -100.0..100.0f64,
        intercept in -1.0e4..1.0e4f64,
        n in 4usize..40,
    ) {
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
        let y: Vec<f64> = x.iter().map(|v| slope * v + intercept).collect();
        let est = theil_sen(&x, &y).unwrap();
        prop_assert!((est - slope).abs() < 1e-6 * (1.0 + slope.abs()));
    }

    /// Theil–Sen trend direction survives corruption of up to 20% of points
    /// on a steep clean line (breakdown point is ~29%).
    #[test]
    fn theil_sen_robust_to_minority_corruption(
        corrupt_at in prop::collection::btree_set(0usize..30, 1..6),
        magnitude in 1.0e6..1.0e9f64,
    ) {
        let n = 30usize;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y: Vec<f64> = x.iter().map(|v| 10.0 * v).collect();
        for &i in &corrupt_at {
            y[i] = if i % 2 == 0 { magnitude } else { -magnitude };
        }
        let t = TheilSen::new().with_alpha(0.6).trend(&x, &y);
        prop_assert!(t.is_increasing(), "trend lost: {:?}", t);
    }

    /// Spearman is invariant under strictly increasing transforms of either
    /// variable.
    #[test]
    fn spearman_monotone_invariance(v in prop::collection::vec(-1.0e3..1.0e3f64, 5..60)) {
        let x: Vec<f64> = (0..v.len()).map(|i| i as f64).collect();
        let rho = spearman(&x, &v);
        let transformed: Vec<f64> = v.iter().map(|&t| (t / 2000.0).tanh() * 3.0 + 5.0).collect();
        let rho2 = spearman(&x, &transformed);
        match (rho, rho2) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            // tanh can collapse distinct values only by underflow; with the
            // bounded input range both should be Some or both None.
            (None, None) => {},
            other => prop_assert!(false, "mismatch: {:?}", other),
        }
    }

    /// Spearman and Pearson both lie in [-1, 1].
    #[test]
    fn correlations_bounded(
        x in prop::collection::vec(-1.0e3..1.0e3f64, 3..50),
        y_seed in prop::collection::vec(-1.0e3..1.0e3f64, 3..50),
    ) {
        let n = x.len().min(y_seed.len());
        if let Some(r) = pearson(&x[..n], &y_seed[..n]) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
        if let Some(r) = spearman(&x[..n], &y_seed[..n]) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    /// Ranks are a permutation-ish: sum equals n(n+1)/2 for finite inputs.
    #[test]
    fn rank_sum_invariant(v in finite_vec(100)) {
        let ranks = average_ranks(&v);
        let sum: f64 = ranks.iter().sum();
        let n = v.len() as f64;
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// The token bucket never spends more than initial + refills, and a
    /// consumer of exactly fill_rate per period never starves.
    #[test]
    fn token_bucket_conservation(
        depth in 1.0..1.0e4f64,
        rate in 0.0..100.0f64,
        demands in prop::collection::vec(0.0..500.0f64, 1..200),
    ) {
        let mut b = TokenBucket::new(depth, rate, depth);
        let mut spent = 0.0;
        let n = demands.len() as f64;
        for d in &demands {
            if b.try_consume(*d) {
                spent += d;
            }
            b.refill();
        }
        prop_assert!(spent <= depth + n * rate + 1e-6);
        prop_assert!(b.available() <= depth + 1e-9);
    }

    /// P² estimates stay within the observed sample range.
    #[test]
    fn p2_within_range(v in finite_vec(500), q in 0.01..0.99f64) {
        let mut p = P2Quantile::new(q);
        for &x in &v {
            p.update(x);
        }
        let est = p.value().unwrap();
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} outside [{lo}, {hi}]");
    }

    /// CDF fraction is monotone and hits 1.0 at the max.
    #[test]
    fn cdf_monotone(v in finite_vec(200), probe in -1.0e6..1.0e6f64) {
        let c = Cdf::new(v.clone());
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((c.fraction_at_or_below(max) - 1.0).abs() < 1e-12);
        let f1 = c.fraction_at_or_below(probe);
        let f2 = c.fraction_at_or_below(probe + 1.0);
        prop_assert!(f1 <= f2);
    }

    /// ExactSum is bit-identical for any grouping of the same inputs —
    /// the monoid property the sharded fleet merge depends on. Inputs
    /// span 30 orders of magnitude so plain f64 folds *would* diverge.
    #[test]
    fn exact_sum_is_grouping_independent(
        v in prop::collection::vec(
            prop_oneof![-1.0e15..1.0e15f64, -1.0e-12..1.0e-12f64],
            1..120,
        ),
        chunk in 1usize..20,
    ) {
        let mut sequential = ExactSum::new();
        for &x in &v {
            sequential.add(x);
        }
        let mut merged = ExactSum::new();
        for group in v.chunks(chunk) {
            let mut part = ExactSum::new();
            for &x in group {
                part.add(x);
            }
            merged.merge(&part);
        }
        prop_assert_eq!(merged.value(), sequential.value());
        // And reversed merge order (commutativity of the exact value).
        let mut rev = ExactSum::new();
        for group in v.chunks(chunk).rev() {
            let mut part = ExactSum::new();
            for &x in group {
                part.add(x);
            }
            rev.merge(&part);
        }
        prop_assert_eq!(rev.value(), sequential.value());
    }
}
