//! Streaming quantile estimation (P² algorithm).
//!
//! The telemetry manager samples counters every few seconds (§3.1); holding
//! every sample of every counter for every tenant is wasteful at fleet
//! scale. The P² algorithm (Jain & Chlamtac, 1985) estimates a single
//! quantile online with five markers and O(1) memory, which is what a
//! production telemetry pipeline would deploy. Our per-tenant interval
//! aggregation uses exact medians; `P2Quantile` backs the fleet-scale paths
//! and is validated against the exact quantiles in tests.

/// Streaming estimator of the `q`-quantile (`0 < q < 1`) using the P²
/// algorithm: five markers whose heights approximate the quantile curve.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based, floating during adjustment).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: usize,
    /// Initial observations buffered until five are available.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Convenience constructor for the median.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of observations ingested.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation; non-finite observations are ignored.
    pub fn update(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (h, v) in self.heights.iter_mut().zip(self.initial.iter()) {
                    *h = *v;
                }
            }
            return;
        }

        // Locate the cell containing x and clamp extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // first i with heights[i] <= x < heights[i+1]
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust interior markers with parabolic (or linear) interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate, or `None` before any observation. With fewer than
    /// five observations the exact sample quantile is returned.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return Some(crate::quantile::interpolated_sorted(&v, self.q * 100.0));
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(values: &mut [f64], q: f64) -> f64 {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        crate::quantile::interpolated_sorted(values, q * 100.0)
    }

    /// Simple deterministic LCG so the test needs no rand dependency.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(P2Quantile::median().value(), None);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2Quantile::median();
        p.update(3.0);
        p.update(1.0);
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::median();
        let mut seed = 42u64;
        let mut all = Vec::new();
        for _ in 0..20_000 {
            let v = lcg(&mut seed) * 100.0;
            p.update(v);
            all.push(v);
        }
        let exact = exact_quantile(&mut all, 0.5);
        let est = p.value().unwrap();
        assert!((est - exact).abs() < 2.0, "est {est} vs exact {exact}");
    }

    #[test]
    fn p95_of_skewed_stream() {
        let mut p = P2Quantile::new(0.95);
        let mut seed = 7u64;
        let mut all = Vec::new();
        for _ in 0..20_000 {
            // Exponential-ish: -ln(u)
            let u = lcg(&mut seed).max(1e-12);
            let v = -u.ln() * 10.0;
            p.update(v);
            all.push(v);
        }
        let exact = exact_quantile(&mut all, 0.95);
        let est = p.value().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn ignores_non_finite() {
        let mut p = P2Quantile::median();
        p.update(f64::NAN);
        assert_eq!(p.count(), 0);
    }

    #[test]
    fn constant_stream() {
        let mut p = P2Quantile::new(0.9);
        for _ in 0..100 {
            p.update(5.0);
        }
        assert_eq!(p.value(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn invalid_q_panics() {
        let _ = P2Quantile::new(1.0);
    }
}
