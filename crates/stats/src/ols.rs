//! Ordinary least squares — the *rejected* trend baseline (§3.2.1).
//!
//! The paper explains why least-squares regression is unsuitable for noisy
//! telemetry: its breakdown point is 0, so a single outlier can flip the
//! fitted slope. We keep an implementation for two reasons: the R² goodness
//! of fit is a useful diagnostic, and the ablation bench
//! (`micro_stats`) demonstrates the robustness gap against Theil–Sen.

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (clamped); `1.0` is a
    /// perfect fit. For a constant `y`, R² is defined here as `1.0` when the
    /// fit is exact.
    pub r_squared: f64,
}

/// Fits `y = slope·x + intercept` by least squares.
///
/// Returns `None` when fewer than two finite points remain or all `x` are
/// identical (vertical line).
///
/// # Examples
/// ```
/// use dasr_stats::ols_fit;
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = ols_fit(&x, &y).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert_eq!(fit.r_squared, 1.0);
/// ```
pub fn ols_fit(x: &[f64], y: &[f64]) -> Option<OlsFit> {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    let pts: Vec<(f64, f64)> = x
        .iter()
        .zip(y.iter())
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return None;
    }
    let mean_x = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = pts.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        // y constant: fit is exact iff residuals vanish.
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(OlsFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| -0.5 * v + 4.0).collect();
        let fit = ols_fit(&x, &y).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y = [0.0, 5.0, 1.0, 6.0, 2.0, 7.0, 3.0, 8.0, 4.0, 9.0];
        let fit = ols_fit(&x, &y).unwrap();
        assert!(fit.r_squared < 0.9);
        assert!(fit.r_squared > 0.0);
    }

    #[test]
    fn constant_y_is_perfect_flat_fit() {
        let x = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        let fit = ols_fit(&x, &y).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(ols_fit(&[], &[]).is_none());
        assert!(ols_fit(&[1.0], &[2.0]).is_none());
        assert!(ols_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none());
        assert!(ols_fit(&[f64::NAN, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn zero_breakdown_point() {
        // Demonstrates why the paper rejects OLS: one corrupted point
        // dominates the fit.
        let x: Vec<f64> = (0..20).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v * 1.0).collect();
        y[19] = -1e9;
        let fit = ols_fit(&x, &y).unwrap();
        assert!(fit.slope < -1e6, "slope {} not dominated", fit.slope);
    }
}
