//! Fixed-bin histograms and empirical CDFs.
//!
//! The figure-reproduction benches (Figures 2 and 6 of the paper) report
//! cumulative distributions — of inter-event intervals, change frequencies
//! and wait times. [`Histogram`] accumulates counts into explicit bin edges;
//! [`Cdf`] holds a sorted sample and answers both "fraction below x" and
//! quantile queries.

/// A histogram over explicit, strictly increasing bin *upper* edges.
///
/// A value `v` lands in the first bin whose upper edge satisfies
/// `v <= edge`; values above the last edge land in an implicit overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper edges.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let n = edges.len();
        Self {
            edges,
            counts: vec![0; n],
            overflow: 0,
            total: 0,
        }
    }

    /// Creates `n` uniform bins spanning `[lo, hi]`.
    pub fn uniform(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && hi > lo, "invalid uniform histogram spec");
        let width = (hi - lo) / n as f64;
        Self::new((1..=n).map(|i| lo + width * i as f64).collect())
    }

    /// Records one observation. Non-finite observations are ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.total += 1;
        match self.edges.iter().position(|&e| v <= e) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Bin upper edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts (not including overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations in each bin, in bin order. Empty histogram
    /// yields all zeros.
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Cumulative fraction of observations at or below each edge.
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                if self.total == 0 {
                    0.0
                } else {
                    acc as f64 / self.total as f64
                }
            })
            .collect()
    }
}

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from a sample; non-finite values are dropped.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted: values }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the sample `<= x` (0.0 for an empty sample).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile of the sample (nearest-rank); `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(crate::quantile::nearest_rank_sorted(&self.sorted, p))
        }
    }

    /// The underlying sorted sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(vec![1.0, 2.0, 3.0]);
        for v in [0.5, 1.0, 1.5, 2.5, 9.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn cumulative_fractions_monotone() {
        let mut h = Histogram::uniform(0.0, 10.0, 5);
        for i in 0..100 {
            h.record((i % 10) as f64);
        }
        let cum = h.cumulative_fractions();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_with_overflow() {
        let mut h = Histogram::new(vec![10.0]);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.fractions(), vec![0.5]);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn ignores_non_finite() {
        let mut h = Histogram::uniform(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_panic() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn cdf_fraction_and_percentile() {
        let c = Cdf::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(2.0), 0.5);
        assert_eq!(c.fraction_at_or_below(99.0), 1.0);
        assert_eq!(c.percentile(50.0), Some(2.0));
        assert_eq!(c.percentile(100.0), Some(4.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::new(vec![f64::NAN]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_or_below(1.0), 0.0);
        assert_eq!(c.percentile(50.0), None);
    }
}
