//! Robust location and scale estimators.
//!
//! Complements [`crate::quantile`] with the trimmed mean (a location
//! estimator with tunable breakdown point) and the median absolute deviation
//! (MAD — the robust analogue of the standard deviation). The telemetry
//! manager uses these to summarize noisy per-second counters into
//! per-interval signals (§3.1).

use crate::quantile::median;

/// Returns the `trim`-fraction trimmed mean: the mean after discarding the
/// lowest and highest `trim` fraction of observations.
///
/// `trim` must be in `[0.0, 0.5)`; a trim of `0.0` is the ordinary mean. The
/// breakdown point of the trimmed mean equals `trim`.
///
/// Returns `None` for an empty slice (after filtering non-finite values).
///
/// # Examples
/// ```
/// use dasr_stats::trimmed_mean;
/// // One huge outlier is discarded by a 10% trim on 10 points.
/// let v = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1_000_000.0];
/// assert_eq!(trimmed_mean(&v, 0.1), Some(1.0));
/// ```
pub fn trimmed_mean(values: &[f64], trim: f64) -> Option<f64> {
    assert!((0.0..0.5).contains(&trim), "trim must be in [0, 0.5)");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let k = (sorted.len() as f64 * trim).floor() as usize;
    let kept = &sorted[k..sorted.len() - k];
    if kept.is_empty() {
        return None;
    }
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Returns the median absolute deviation (MAD) about the median.
///
/// `mad = median(|x_i - median(x)|)`. Unscaled — multiply by ≈1.4826 for a
/// consistent estimate of a Gaussian σ. Breakdown point 50%.
///
/// Returns `None` for an empty slice.
pub fn mad(values: &[f64]) -> Option<f64> {
    let m = median(values)?;
    let deviations: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .map(|v| (v - m).abs())
        .collect();
    median(&deviations)
}

/// A compact five-number-style robust summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSummary {
    /// Number of finite observations summarized.
    pub count: usize,
    /// Minimum finite observation.
    pub min: f64,
    /// Median (interpolated).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Maximum finite observation.
    pub max: f64,
    /// Median absolute deviation.
    pub mad: f64,
}

impl RobustSummary {
    /// Summarizes `values`, ignoring non-finite entries. Returns `None` if no
    /// finite values remain.
    pub fn of(values: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let mut sorted = finite.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Self {
            count: sorted.len(),
            min: sorted[0],
            median: crate::quantile::interpolated_sorted(&sorted, 50.0),
            p95: crate::quantile::nearest_rank_sorted(&sorted, 95.0),
            max: *sorted.last().expect("non-empty"),
            mad: mad(&finite).expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_zero_trim_is_mean() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(trimmed_mean(&v, 0.0), Some(2.5));
    }

    #[test]
    fn trimmed_mean_discards_tails() {
        let v = [0.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1e9];
        assert_eq!(trimmed_mean(&v, 0.1), Some(10.0));
    }

    #[test]
    fn trimmed_mean_empty() {
        assert_eq!(trimmed_mean(&[], 0.1), None);
        assert_eq!(trimmed_mean(&[f64::NAN], 0.1), None);
    }

    #[test]
    #[should_panic(expected = "trim must be in")]
    fn trimmed_mean_rejects_half_trim() {
        let _ = trimmed_mean(&[1.0], 0.5);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[4.0; 10]), Some(0.0));
    }

    #[test]
    fn mad_is_outlier_resistant() {
        let clean: Vec<f64> = (0..100).map(|i| (i % 5) as f64).collect();
        let clean_mad = mad(&clean).unwrap();
        let mut dirty = clean.clone();
        for slot in dirty.iter_mut().take(20) {
            *slot = 1e12;
        }
        let dirty_mad = mad(&dirty).unwrap();
        assert!(
            dirty_mad <= clean_mad + 2.0,
            "MAD blew up: {clean_mad} -> {dirty_mad}"
        );
    }

    #[test]
    fn summary_fields_are_consistent() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = RobustSummary::of(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.5);
        assert_eq!(s.p95, 95.0);
        assert!(s.min <= s.median && s.median <= s.p95 && s.p95 <= s.max);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(RobustSummary::of(&[]).is_none());
        assert!(RobustSummary::of(&[f64::NAN, f64::INFINITY]).is_none());
    }
}
