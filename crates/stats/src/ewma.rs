//! Exponentially weighted moving average.
//!
//! Used as a light-weight smoother for display/diagnostic series (the robust
//! demand signals themselves use medians — see the crate docs).

/// An exponentially weighted moving average with smoothing factor `alpha`.
///
/// `value_{t} = alpha * x_t + (1 - alpha) * value_{t-1}`; the first
/// observation initializes the average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates a smoother with factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Creates a smoother whose weight halves every `half_life` observations.
    pub fn with_half_life(half_life: f64) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        Self::new(1.0 - 0.5f64.powf(1.0 / half_life))
    }

    /// Feeds one observation; non-finite observations are ignored.
    /// Returns the updated average (or the previous one if ignored).
    pub fn update(&mut self, x: f64) -> Option<f64> {
        if x.is_finite() {
            self.value = Some(match self.value {
                None => x,
                Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
            });
        }
        self.value
    }

    /// Current smoothed value, `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), Some(10.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.update(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.update(1.0);
        e.update(9.0);
        assert_eq!(e.value(), Some(9.0));
    }

    #[test]
    fn ignores_non_finite() {
        let mut e = Ewma::new(0.5);
        e.update(4.0);
        assert_eq!(e.update(f64::NAN), Some(4.0));
        assert_eq!(e.update(f64::INFINITY), Some(4.0));
    }

    #[test]
    fn half_life_semantics() {
        // After `h` updates toward 0 from 1, the value should be ~0.5.
        let h = 10.0;
        let mut e = Ewma::with_half_life(h);
        e.update(1.0);
        for _ in 0..10 {
            e.update(0.0);
        }
        assert!((e.value().unwrap() - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn zero_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.update(3.0);
        e.reset();
        assert_eq!(e.value(), None);
    }
}
