//! # dasr-stats — robust statistics for noisy telemetry
//!
//! Statistical substrate for the SIGMOD'16 paper *Automated Demand-driven
//! Resource Scaling in Relational Database-as-a-Service*.
//!
//! System telemetry is noisy: workload spikes, checkpoints and transient
//! system activity inject large outliers. The paper (§3) therefore insists on
//! estimators with a high *breakdown point* — the fraction of arbitrarily
//! corrupted observations an estimator tolerates before producing an
//! arbitrarily wrong answer. This crate provides:
//!
//! - [`quantile`] — medians and percentiles (breakdown point 50% for the
//!   median), both nearest-rank and linearly interpolated;
//! - [`robust`] — trimmed means, MAD, robust summaries;
//! - [`theil_sen()`] — the Theil–Sen slope estimator (breakdown point 29%) with
//!   the paper's α-sign-agreement trend-acceptance test (§3.2.1);
//! - [`ols`] — ordinary least squares with R², the *rejected* baseline the
//!   paper compares against (breakdown point 0);
//! - [`rank`] / [`spearman()`] — average-rank computation and Spearman's ρ
//!   (§3.2.2), robust to outliers because values are first mapped to ranks;
//! - [`pearson()`] — Pearson correlation (used internally by Spearman);
//! - [`ewma`] — exponentially weighted moving averages;
//! - [`histogram`] — fixed-bin histograms and empirical CDFs used by the
//!   figure-reproduction benches;
//! - [`online`] — streaming quantile estimation (P² algorithm) for
//!   constant-memory robust aggregation of fine-grained samples;
//! - [`exact`] — error-free `f64` accumulation ([`ExactSum`], Shewchuk
//!   expansions): grouping- and order-independent sums, the numerical
//!   backbone of the fleet scheduler's sharded monoid merge;
//! - [`token_bucket`] — the traffic-shaping token bucket the budget manager
//!   (§5) is built on.
//!
//! All functions are deterministic and allocation-conscious; the hot paths
//! (`median_of_mut`, Theil–Sen over bounded windows) avoid re-allocating.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod ewma;
pub mod exact;
pub mod histogram;
pub mod ols;
pub mod online;
pub mod pearson;
pub mod quantile;
pub mod rank;
pub mod robust;
pub mod spearman;
pub mod theil_sen;
pub mod token_bucket;

pub use ewma::Ewma;
pub use exact::ExactSum;
pub use histogram::{Cdf, Histogram};
pub use ols::{ols_fit, OlsFit};
pub use online::P2Quantile;
pub use pearson::{pearson, pearson_of_finite};
pub use quantile::{
    median, median_in, median_of_mut, percentile, percentile_in, percentile_interpolated,
    percentile_interpolated_in,
};
pub use rank::{average_ranks, average_ranks_in};
pub use robust::{mad, trimmed_mean};
pub use spearman::{spearman, spearman_in, SpearmanScratch};
pub use theil_sen::{theil_sen, TheilSen, Trend, TrendDirection, TrendScratch};
pub use token_bucket::TokenBucket;
