//! Error-free floating-point accumulation (Shewchuk expansions).
//!
//! The fleet scheduler folds per-tenant `f64` aggregates (costs, latency
//! sums, gauge totals) into per-shard accumulators and merges those in
//! shard order. Plain `f64` addition is not associative, so the merged
//! total would depend on the shard grouping and the "bit-identical for any
//! thread/shard count" contract would silently break at the last ulp.
//!
//! [`ExactSum`] fixes that by maintaining the *exact* running sum as a
//! non-overlapping expansion of doubles (Shewchuk's `GROW-EXPANSION`, the
//! same algorithm behind Python's `math.fsum`). Addition of an input or a
//! merge of two accumulators preserves the exact real value, so the final
//! [`ExactSum::value`] — the correctly-rounded exact sum — depends only on
//! the *multiset* of inputs, never on grouping or order. That is precisely
//! the associativity/commutativity a monoid fold needs.
//!
//! The partial-sum array is inline (no heap): a non-overlapping expansion
//! of finite doubles can never exceed ~40 components (the exponent range
//! divided by the 53-bit mantissa width), so the accumulator is a flat
//! `[f64; 44]` and every operation is allocation-free.

/// Maximum components of a non-overlapping double expansion, with slack.
///
/// Doubles span binary exponents from −1074 (subnormal) to +1023; each
/// non-overlapping component covers at least 53 bits, so at most
/// ⌈(1023 + 1074 + 53) / 53⌉ = 41 components can coexist. 44 leaves slack
/// for the transient `+1` a single grow step can add.
const MAX_PARTIALS: usize = 44;

/// An exact, grouping-independent sum of `f64` values.
///
/// `add` and `merge` are error-free: the accumulator always represents the
/// exact real-number sum of everything fed in. [`ExactSum::value`] rounds
/// that exact value to the nearest `f64` once, so any two accumulation
/// orders or groupings of the same inputs produce bit-identical results —
/// the property the fleet's sharded monoid fold relies on.
///
/// Non-finite inputs (±∞, NaN) are tracked in a separate plain-`f64` slot
/// so the expansion arithmetic stays well-defined; once one is seen, the
/// result follows IEEE semantics of adding it at the end.
///
/// # Example
///
/// ```
/// use dasr_stats::ExactSum;
///
/// // A sum that plain f64 folds get wrong in grouping-dependent ways.
/// let xs = [1e16, 3.14, -1e16, 2.71, 1e-9];
/// let mut left = ExactSum::new();
/// for x in xs {
///     left.add(x);
/// }
/// // Same inputs, split into two groups and merged.
/// let mut a = ExactSum::new();
/// let mut b = ExactSum::new();
/// a.add(1e16);
/// a.add(3.14);
/// b.add(-1e16);
/// b.add(2.71);
/// b.add(1e-9);
/// a.merge(&b);
/// assert_eq!(left.value(), a.value());
/// assert_eq!(left.value(), 3.14 + 2.71 + 1e-9); // exact here
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExactSum {
    /// Non-overlapping partials in increasing magnitude order.
    partials: [f64; MAX_PARTIALS],
    /// Live prefix length of `partials`.
    len: usize,
    /// Sum of non-finite inputs (applied on top of the finite expansion).
    special: f64,
}

impl ExactSum {
    /// An empty sum (value 0.0).
    pub const fn new() -> Self {
        Self {
            partials: [0.0; MAX_PARTIALS],
            len: 0,
            special: 0.0,
        }
    }

    /// A sum seeded with one value.
    pub fn of(x: f64) -> Self {
        let mut s = Self::new();
        s.add(x);
        s
    }

    /// True when nothing (or only zeros) has been accumulated.
    pub fn is_zero(&self) -> bool {
        self.len == 0 && self.special == 0.0
    }

    /// Adds one value, error-free (`GROW-EXPANSION` with zero elimination).
    // dasr-lint: no-alloc
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.special += x;
            return;
        }
        if x == 0.0 {
            return;
        }
        let mut x = x;
        let mut keep = 0usize;
        for j in 0..self.len {
            let mut y = self.partials[j];
            if x.abs() < y.abs() {
                core::mem::swap(&mut x, &mut y);
            }
            // Two-sum: hi + lo == x + y exactly.
            let hi = x + y;
            let lo = y - (hi - x);
            if lo != 0.0 {
                self.partials[keep] = lo;
                keep += 1;
            }
            x = hi;
        }
        debug_assert!(keep < MAX_PARTIALS, "expansion exceeded its bound");
        self.partials[keep] = x;
        self.len = keep + 1;
    }

    /// Merges another exact sum in, error-free. Because both sides are
    /// exact, `a.merge(&b)` represents exactly `Σa + Σb` — merging in any
    /// grouping or order yields the same exact value, hence the same
    /// [`ExactSum::value`].
    // dasr-lint: no-alloc
    // dasr-lint: entry(G1)
    pub fn merge(&mut self, other: &ExactSum) {
        for j in 0..other.len {
            self.add(other.partials[j]);
        }
        self.special += other.special;
    }

    /// The exact sum, correctly rounded to the nearest `f64` (round half
    /// to even) — `math.fsum`'s final rounding, so the result depends only
    /// on the multiset of inputs, not on the expansion's representation.
    pub fn value(&self) -> f64 {
        if self.special != 0.0 || self.special.is_nan() {
            // IEEE semantics once a non-finite value entered the sum.
            let finite: f64 = self.partials[..self.len].iter().sum();
            return finite + self.special;
        }
        if self.len == 0 {
            return 0.0;
        }
        let p = &self.partials[..self.len];
        let mut n = p.len();
        let mut hi = p[n - 1];
        let mut lo = 0.0;
        while n > 1 {
            n -= 1;
            let x = hi;
            let y = p[n - 1];
            hi = x + y;
            let yr = hi - x;
            lo = y - yr;
            if lo != 0.0 {
                break;
            }
        }
        // Half-way case: if the rounded-off residue and the next partial
        // have the same sign, `hi` sits exactly between two doubles and
        // must round toward the residue (round half to even correction).
        if n > 1 && ((lo < 0.0 && p[n - 2] < 0.0) || (lo > 0.0 && p[n - 2] > 0.0)) {
            let y = lo * 2.0;
            let x = hi + y;
            if y == x - hi {
                hi = x;
            }
        }
        hi
    }
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(ExactSum::new().value(), 0.0);
        assert!(ExactSum::new().is_zero());
        assert!(!ExactSum::of(1.5).is_zero());
    }

    #[test]
    fn simple_sums_match_plain_addition() {
        let mut s = ExactSum::new();
        for x in [1.0, 2.0, 3.5, -0.25] {
            s.add(x);
        }
        assert_eq!(s.value(), 6.25);
    }

    #[test]
    fn cancellation_is_exact() {
        let mut s = ExactSum::new();
        s.add(1e16);
        s.add(1.0);
        s.add(-1e16);
        assert_eq!(s.value(), 1.0, "plain f64 folds would return 0.0 or 2.0");
    }

    #[test]
    fn grouping_independent_under_merge() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| {
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                sign * (i as f64 * 1.000_000_1).exp2().min(1e12) * 0.001
            })
            .collect();
        let mut sequential = ExactSum::new();
        for &x in &xs {
            sequential.add(x);
        }
        for group in [1usize, 3, 7, 17, 1000] {
            let mut merged = ExactSum::new();
            for chunk in xs.chunks(group) {
                let mut part = ExactSum::new();
                for &x in chunk {
                    part.add(x);
                }
                merged.merge(&part);
            }
            assert_eq!(
                merged.value(),
                sequential.value(),
                "grouping {group} diverged"
            );
        }
    }

    #[test]
    fn ill_conditioned_sum_is_correctly_rounded() {
        // fsum's classic test: 1 + 1e100 + 1 - 1e100 == 2 exactly.
        let mut s = ExactSum::new();
        for x in [1.0, 1e100, 1.0, -1e100] {
            s.add(x);
        }
        assert_eq!(s.value(), 2.0);
    }

    #[test]
    fn many_small_values_round_correctly() {
        let mut s = ExactSum::new();
        for _ in 0..10_000 {
            s.add(0.1);
        }
        // The correctly rounded sum of 10_000 exact copies of the double
        // nearest 0.1 (fsum gives exactly this).
        let expect = {
            // 0.1 as a double is 3602879701896397 / 2^55.
            let num = 3602879701896397.0 * 10_000.0;
            num / 2f64.powi(55)
        };
        assert_eq!(s.value(), expect);
    }

    #[test]
    fn non_finite_inputs_follow_ieee() {
        let mut s = ExactSum::of(5.0);
        s.add(f64::INFINITY);
        assert_eq!(s.value(), f64::INFINITY);
        let mut t = ExactSum::of(5.0);
        t.add(f64::INFINITY);
        t.add(f64::NEG_INFINITY);
        assert!(t.value().is_nan());
    }

    #[test]
    fn copy_semantics_and_of() {
        let a = ExactSum::of(2.5);
        let b = a; // Copy
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut a = ExactSum::of(1.25);
        a.merge(&ExactSum::new());
        assert_eq!(a.value(), 1.25);
        let mut e = ExactSum::new();
        e.merge(&a);
        assert_eq!(e.value(), 1.25);
    }
}
