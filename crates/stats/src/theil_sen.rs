//! Theil–Sen trend estimation with the paper's acceptance test (§3.2.1).
//!
//! Given `n` points `(x_i, y_i)`, the Theil–Sen estimator computes the slope
//! of the line through every pair and takes the **median** of those
//! `O(n²)` pairwise slopes. Its breakdown point is ≈29.3%, which makes it
//! robust to the outliers endemic to system telemetry, unlike least-squares
//! regression (breakdown point 0 — a single corrupted sample can flip the
//! slope sign).
//!
//! The paper uses the pairwise slopes a second way: a trend is only
//! **accepted** if at least `α%` of the pairwise slopes agree in sign
//! (α = 70 in the paper's implementation). A noisy, trendless series
//! produces a near-even split of positive and negative slopes and is
//! rejected; this prevents the auto-scaler from chasing noise.

/// Direction of an accepted trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendDirection {
    /// Values increase with time.
    Increasing,
    /// Values decrease with time.
    Decreasing,
}

/// Result of a Theil–Sen trend test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trend {
    /// Too few points, or the sign-agreement test failed: no statistically
    /// significant trend. The auto-scaler must ignore it.
    None,
    /// A significant trend with the given direction and median slope
    /// (units of y per unit of x).
    Significant {
        /// Whether the trend is increasing or decreasing.
        direction: TrendDirection,
        /// Median pairwise slope (y units per x unit).
        slope: f64,
        /// Fraction of pairwise slopes agreeing with the dominant sign, in
        /// `[0.5, 1.0]`.
        agreement: f64,
    },
}

impl Trend {
    /// True if this is a significant increasing trend.
    pub fn is_increasing(&self) -> bool {
        matches!(
            self,
            Trend::Significant {
                direction: TrendDirection::Increasing,
                ..
            }
        )
    }

    /// True if this is a significant decreasing trend.
    pub fn is_decreasing(&self) -> bool {
        matches!(
            self,
            Trend::Significant {
                direction: TrendDirection::Decreasing,
                ..
            }
        )
    }

    /// True if no significant trend was detected.
    pub fn is_none(&self) -> bool {
        matches!(self, Trend::None)
    }

    /// Median slope of the trend, or `0.0` when no trend was accepted.
    pub fn slope(&self) -> f64 {
        match self {
            Trend::None => 0.0,
            Trend::Significant { slope, .. } => *slope,
        }
    }
}

/// Theil–Sen trend estimator.
///
/// Construct with [`TheilSen::new`], configure the acceptance threshold with
/// [`TheilSen::with_alpha`], and evaluate series with [`TheilSen::trend`].
#[derive(Debug, Clone, Copy)]
pub struct TheilSen {
    /// Minimum fraction (in `[0.5, 1.0]`) of pairwise slopes that must share
    /// a sign for a trend to be accepted. Paper value: 0.70.
    alpha: f64,
    /// Minimum number of points to attempt estimation.
    min_points: usize,
    /// Slopes with absolute value at or below this are treated as flat
    /// (neither positive nor negative) in the agreement test.
    flat_eps: f64,
}

impl Default for TheilSen {
    fn default() -> Self {
        Self::new()
    }
}

impl TheilSen {
    /// Estimator with the paper's defaults: α = 0.70, at least 4 points.
    pub fn new() -> Self {
        Self {
            alpha: 0.70,
            min_points: 4,
            flat_eps: 1e-12,
        }
    }

    /// Sets the sign-agreement acceptance threshold `alpha` (`0.5 ..= 1.0`).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!((0.5..=1.0).contains(&alpha), "alpha must be in [0.5, 1.0]");
        self.alpha = alpha;
        self
    }

    /// Sets the minimum number of points required to attempt estimation.
    pub fn with_min_points(mut self, min_points: usize) -> Self {
        assert!(min_points >= 2, "need at least two points for a slope");
        self.min_points = min_points;
        self
    }

    /// Sets the flatness epsilon: pairwise slopes with `|m| <= eps` count as
    /// flat and vote for neither direction.
    pub fn with_flat_epsilon(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0, "epsilon must be non-negative");
        self.flat_eps = eps;
        self
    }

    /// Computes the trend of `y` sampled at equally *indexed* positions
    /// `x = 0, 1, 2, …` (the common telemetry case: one sample per interval).
    pub fn trend_indexed(&self, y: &[f64]) -> Trend {
        self.trend_indexed_in(y, &mut TrendScratch::default())
    }

    /// Scratch-buffer variant of [`TheilSen::trend_indexed`], the per-tenant
    /// per-interval hot path. Because the x positions are the sample indices
    /// of the finite entries, `dx = j - i > 0` always holds: no x vector is
    /// materialized, no vertical-pair check runs, and the slope buffer is
    /// reused across calls.
    pub fn trend_indexed_in(&self, y: &[f64], scratch: &mut TrendScratch) -> Trend {
        // All-finite fast path (every util/wait series): pairwise slopes
        // straight off the slice, no index indirection. `d + 1 == j - i`,
        // so the computed slopes are bit-identical to the general path.
        if y.iter().all(|v| v.is_finite()) {
            if y.len() < self.min_points {
                return Trend::None;
            }
            scratch.slopes.clear();
            scratch.slopes.reserve(y.len() * (y.len() - 1) / 2);
            for (i, &yi) in y.iter().enumerate() {
                for (d, &yj) in y[i + 1..].iter().enumerate() {
                    scratch.slopes.push((yj - yi) / (d + 1) as f64);
                }
            }
            return self.accept(&mut scratch.slopes);
        }
        scratch.idx.clear();
        scratch
            .idx
            .extend((0..y.len() as u32).filter(|&i| y[i as usize].is_finite()));
        if scratch.idx.len() < self.min_points {
            return Trend::None;
        }
        scratch.slopes.clear();
        scratch
            .slopes
            .reserve(scratch.idx.len() * (scratch.idx.len() - 1) / 2);
        for (a, &i) in scratch.idx.iter().enumerate() {
            let yi = y[i as usize];
            for &j in &scratch.idx[a + 1..] {
                scratch.slopes.push((y[j as usize] - yi) / (j - i) as f64);
            }
        }
        self.accept(&mut scratch.slopes)
    }

    /// Computes the trend of points `(x[i], y[i])`.
    ///
    /// Pairs with equal `x` are skipped (vertical slope). Returns
    /// [`Trend::None`] if fewer than `min_points` finite points are supplied,
    /// if no valid pairwise slope exists, or if the sign-agreement test
    /// fails.
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()`.
    pub fn trend(&self, x: &[f64], y: &[f64]) -> Trend {
        self.trend_in(x, y, &mut TrendScratch::default())
    }

    /// Scratch-buffer variant of [`TheilSen::trend`]: identical results,
    /// reusable intermediate buffers.
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()`.
    pub fn trend_in(&self, x: &[f64], y: &[f64], scratch: &mut TrendScratch) -> Trend {
        if !self.collect_slopes(x, y, scratch) {
            return Trend::None;
        }
        if scratch.slopes.is_empty() {
            return Trend::None;
        }
        self.accept(&mut scratch.slopes)
    }

    /// Returns only the median pairwise slope — no sign-agreement test — or
    /// `None` when fewer than `min_points` finite points or no valid
    /// (distinct-x) pair exists.
    ///
    /// Unlike the trend entry points this never rejects a series for being
    /// flat or noisy: a constant series yields `Some(0.0)`. (Earlier
    /// versions routed through the agreement test, which both paid its full
    /// cost and wrongly returned `None` for flat series.)
    ///
    /// # Examples
    ///
    /// The median of pairwise slopes shrugs off an outlier that would drag
    /// a least-squares fit (§3.2.1):
    ///
    /// ```
    /// use dasr_stats::TheilSen;
    ///
    /// let ts = TheilSen::new();
    /// let x = [0.0, 1.0, 2.0, 3.0, 4.0];
    /// assert_eq!(ts.slope(&x, &[1.0, 3.0, 5.0, 7.0, 9.0]), Some(2.0));
    /// // One corrupted sample: the median slope is still 2.
    /// assert_eq!(ts.slope(&x, &[1.0, 3.0, 5.0, 7.0, 100.0]), Some(2.0));
    /// // A flat series is a valid zero slope, not a rejection.
    /// assert_eq!(ts.slope(&x, &[5.0; 5]), Some(0.0));
    /// ```
    pub fn slope(&self, x: &[f64], y: &[f64]) -> Option<f64> {
        self.slope_in(x, y, &mut TrendScratch::default())
    }

    /// Scratch-buffer variant of [`TheilSen::slope`].
    ///
    /// # Panics
    /// Panics if `x.len() != y.len()`.
    pub fn slope_in(&self, x: &[f64], y: &[f64], scratch: &mut TrendScratch) -> Option<f64> {
        if !self.collect_slopes(x, y, scratch) {
            return None;
        }
        crate::quantile::median_of_mut(&mut scratch.slopes)
    }

    /// Fills `scratch.slopes` with all valid pairwise slopes of the finite
    /// points of `(x, y)`. Returns `false` when fewer than `min_points`
    /// finite points exist (slopes untouched).
    fn collect_slopes(&self, x: &[f64], y: &[f64], scratch: &mut TrendScratch) -> bool {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        scratch.xs.clear();
        scratch.ys.clear();
        for (a, b) in x.iter().zip(y.iter()) {
            if a.is_finite() && b.is_finite() {
                scratch.xs.push(*a);
                scratch.ys.push(*b);
            }
        }
        let n = scratch.xs.len();
        if n < self.min_points {
            return false;
        }
        scratch.slopes.clear();
        scratch.slopes.reserve(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = scratch.xs[j] - scratch.xs[i];
                if dx != 0.0 {
                    scratch.slopes.push((scratch.ys[j] - scratch.ys[i]) / dx);
                }
            }
        }
        true
    }

    /// The paper's α-sign-agreement acceptance test over collected pairwise
    /// slopes. Consumes `slopes` (reordered by the median selection).
    fn accept(&self, slopes: &mut [f64]) -> Trend {
        let (mut pos, mut neg) = (0usize, 0usize);
        for &m in slopes.iter() {
            if m > self.flat_eps {
                pos += 1;
            } else if m < -self.flat_eps {
                neg += 1;
            }
        }
        let total = slopes.len() as f64;
        let slope =
            crate::quantile::median_of_mut(slopes).expect("slopes are finite and non-empty");
        let (dominant, direction) = if pos >= neg {
            (pos, TrendDirection::Increasing)
        } else {
            (neg, TrendDirection::Decreasing)
        };
        let agreement = dominant as f64 / total;
        if agreement >= self.alpha {
            Trend::Significant {
                direction,
                slope,
                agreement,
            }
        } else {
            Trend::None
        }
    }
}

/// Reusable buffers for the scratch-based Theil–Sen entry points. One
/// instance per caller makes repeated trend tests allocation-free once the
/// buffers have grown to the window size.
#[derive(Debug, Default, Clone)]
pub struct TrendScratch {
    slopes: Vec<f64>,
    idx: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

/// Convenience: median pairwise slope of `(x, y)` with default settings.
///
/// Returns `None` when fewer than two distinct-x finite points exist.
pub fn theil_sen(x: &[f64], y: &[f64]) -> Option<f64> {
    TheilSen::new().with_min_points(2).slope(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovers_slope() {
        let x: Vec<f64> = (0..20).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let slope = theil_sen(&x, &y).unwrap();
        assert!((slope - 3.0).abs() < 1e-12);
        assert!(TheilSen::new().trend(&x, &y).is_increasing());
    }

    #[test]
    fn decreasing_line_detected() {
        let y: Vec<f64> = (0..10).map(|i| 100.0 - 2.0 * i as f64).collect();
        let t = TheilSen::new().trend_indexed(&y);
        assert!(t.is_decreasing());
        assert!((t.slope() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn too_few_points_is_none() {
        assert_eq!(TheilSen::new().trend_indexed(&[1.0, 2.0, 3.0]), Trend::None);
    }

    #[test]
    fn constant_series_has_no_trend() {
        let y = [5.0; 16];
        assert!(TheilSen::new().trend_indexed(&y).is_none());
    }

    #[test]
    fn alternating_noise_is_rejected() {
        // +1/-1 alternating: roughly half the pairwise slopes are positive,
        // half negative — must fail the 70% agreement test.
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(TheilSen::new().trend_indexed(&y).is_none());
    }

    #[test]
    fn tolerates_outliers_up_to_breakdown() {
        // 20 points on slope 2, with 4 (20%) wildly corrupted: the median
        // slope must stay near 2 and the trend remain increasing.
        let x: Vec<f64> = (0..20).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        y[3] = 1e9;
        y[8] = -1e9;
        y[15] = 1e9;
        y[19] = -1e9;
        let t = TheilSen::new().with_alpha(0.6).trend(&x, &y);
        assert!(t.is_increasing(), "trend lost to 20% outliers: {t:?}");
        assert!((t.slope() - 2.0).abs() < 0.5, "slope {}", t.slope());
    }

    #[test]
    fn least_squares_would_break_where_theil_sen_does_not() {
        // Contrast case from the paper: one large outlier flips OLS but not
        // Theil–Sen.
        let x: Vec<f64> = (0..12).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
        y[0] = 1e6; // single corrupted point
        let ts = theil_sen(&x, &y).unwrap();
        let ols = crate::ols::ols_fit(&x, &y).unwrap();
        assert!((ts - 1.0).abs() < 0.2, "Theil-Sen slope {ts}");
        assert!(
            ols.slope < 0.0,
            "OLS should be dragged negative: {}",
            ols.slope
        );
    }

    #[test]
    fn vertical_pairs_are_skipped() {
        let x = [1.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [0.0, 100.0, 2.0, 3.0, 4.0, 5.0];
        // Slope still computable from non-vertical pairs.
        assert!(theil_sen(&x, &y).is_some());
    }

    #[test]
    fn all_same_x_is_none() {
        let x = [2.0; 6];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(theil_sen(&x, &y), None);
    }

    #[test]
    fn agreement_is_reported() {
        let y: Vec<f64> = (0..10).map(f64::from).collect();
        match TheilSen::new().trend_indexed(&y) {
            Trend::Significant { agreement, .. } => assert_eq!(agreement, 1.0),
            Trend::None => panic!("expected significant trend"),
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        let _ = TheilSen::new().with_alpha(0.3);
    }

    #[test]
    fn nan_points_are_filtered() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        y[4] = f64::NAN;
        let t = TheilSen::new().trend(&x, &y);
        assert!(t.is_increasing());
    }
}
