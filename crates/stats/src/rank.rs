//! Rank transforms with average-rank tie handling.
//!
//! Spearman's ρ (§3.2.2) is the Pearson correlation of *ranks*. Mapping
//! values to ranks bounds how far an outlier can deviate, which is exactly
//! why the paper picks a rank correlation for telemetry.

/// Returns the 1-based average ranks of `values`.
///
/// Ties receive the average of the ranks they span (the standard "fractional
/// ranking" used for Spearman's ρ). Non-finite values receive rank `NAN` and
/// do not influence the ranks of finite values.
///
/// # Examples
/// ```
/// use dasr_stats::average_ranks;
/// assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
/// // Tie at 20.0 spans ranks 2 and 3 → both get 2.5.
/// assert_eq!(average_ranks(&[10.0, 20.0, 20.0, 40.0]), vec![1.0, 2.5, 2.5, 4.0]);
/// ```
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut ranks = Vec::new();
    average_ranks_in(values, &mut Vec::new(), &mut ranks);
    ranks
}

/// Scratch-buffer variant of [`average_ranks`] for hot paths: `order` and
/// `ranks` are cleared and refilled, so callers that reuse the buffers
/// allocate nothing in steady state. `ranks` receives the result.
pub fn average_ranks_in(values: &[f64], order: &mut Vec<u32>, ranks: &mut Vec<f64>) {
    order.clear();
    order.extend((0..values.len() as u32).filter(|&i| values[i as usize].is_finite()));
    order.sort_unstable_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .expect("finite")
    });

    ranks.clear();
    ranks.resize(values.len(), f64::NAN);
    let mut i = 0;
    while i < order.len() {
        // Find the extent of the tie group starting at i.
        let mut j = i + 1;
        while j < order.len() && values[order[j] as usize] == values[order[i] as usize] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx as usize] = avg;
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_values() {
        assert_eq!(
            average_ranks(&[5.0, 1.0, 3.0, 2.0, 4.0]),
            vec![5.0, 1.0, 3.0, 2.0, 4.0]
        );
    }

    #[test]
    fn all_tied() {
        assert_eq!(average_ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn empty() {
        assert!(average_ranks(&[]).is_empty());
    }

    #[test]
    fn nan_gets_nan_rank_and_does_not_shift_others() {
        let r = average_ranks(&[2.0, f64::NAN, 1.0]);
        assert_eq!(r[0], 2.0);
        assert!(r[1].is_nan());
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn ranks_sum_is_invariant() {
        // Sum of ranks of n distinct-or-tied finite values is n(n+1)/2.
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let sum: f64 = average_ranks(&v).iter().sum();
        let n = v.len() as f64;
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }
}
