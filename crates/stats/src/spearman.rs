//! Spearman rank correlation (§3.2.2).
//!
//! Spearman's ρ assesses how well the relation between two variables is
//! described by *any monotonic* function — not just a linear one. The paper
//! chooses it because the dependence between utilization, waits and latency
//! in a database engine is usually non-linear, and because the rank transform
//! bounds outlier influence.

use crate::pearson::pearson_of_finite;
use crate::rank::average_ranks_in;

/// Spearman rank correlation coefficient of paired samples.
///
/// Computed as the Pearson correlation of average ranks (correct under
/// ties). Pairs with a non-finite member are dropped before ranking. Returns
/// `None` when fewer than two pairs remain or either variable is constant.
///
/// # Examples
/// ```
/// use dasr_stats::spearman;
/// // A monotone but non-linear relation is perfectly rank-correlated.
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [1.0, 8.0, 27.0, 64.0, 125.0];
/// assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    spearman_in(x, y, &mut SpearmanScratch::default())
}

/// Reusable buffers for [`spearman_in`]. Holding one of these per caller
/// makes repeated correlations allocation-free in steady state.
#[derive(Debug, Default, Clone)]
pub struct SpearmanScratch {
    xs: Vec<f64>,
    ys: Vec<f64>,
    order: Vec<u32>,
    rx: Vec<f64>,
    ry: Vec<f64>,
}

/// Scratch-buffer variant of [`spearman`]: identical results, but all
/// intermediate vectors (pair filtering, rank order, rank values) live in
/// `scratch` and are reused across calls.
pub fn spearman_in(x: &[f64], y: &[f64], scratch: &mut SpearmanScratch) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    // All-pairs-finite fast path: rank the inputs directly, skipping the
    // pair-filtering copy. Identical results — the filtered copy would be
    // the input itself.
    if x.iter()
        .zip(y.iter())
        .all(|(a, b)| a.is_finite() && b.is_finite())
    {
        if x.len() < 2 {
            return None;
        }
        average_ranks_in(x, &mut scratch.order, &mut scratch.rx);
        average_ranks_in(y, &mut scratch.order, &mut scratch.ry);
        return pearson_of_finite(&scratch.rx, &scratch.ry);
    }
    // Drop pairs with non-finite members so both rank vectors align.
    scratch.xs.clear();
    scratch.ys.clear();
    for (a, b) in x.iter().zip(y.iter()) {
        if a.is_finite() && b.is_finite() {
            scratch.xs.push(*a);
            scratch.ys.push(*b);
        }
    }
    if scratch.xs.len() < 2 {
        return None;
    }
    average_ranks_in(&scratch.xs, &mut scratch.order, &mut scratch.rx);
    average_ranks_in(&scratch.ys, &mut scratch.order, &mut scratch.ry);
    pearson_of_finite(&scratch.rx, &scratch.ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_decreasing() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [100.0, 10.0, 1.0, 0.1];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn invariant_under_monotone_transform() {
        let x: Vec<f64> = (1..=30).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 3.0).collect();
        let y_exp: Vec<f64> = y.iter().map(|v| v.exp2().min(1e300)).collect();
        let a = spearman(&x, &y).unwrap();
        let b = spearman(&x, &y_exp).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn outlier_influence_is_bounded() {
        // One enormous outlier changes ρ only slightly, unlike Pearson.
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v + ((v * 0.7).sin())).collect();
        let clean = spearman(&x, &y).unwrap();
        y[25] = 1e12;
        let dirty = spearman(&x, &y).unwrap();
        assert!((clean - dirty).abs() < 0.15, "{clean} vs {dirty}");
    }

    #[test]
    fn handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_is_none() {
        assert!(spearman(&[1.0; 5], &[1.0, 2.0, 3.0, 4.0, 5.0]).is_none());
    }

    #[test]
    fn textbook_value() {
        // Classic example: ranks differ by a known amount.
        let x = [
            106.0, 86.0, 100.0, 101.0, 99.0, 103.0, 97.0, 113.0, 112.0, 110.0,
        ];
        let y = [7.0, 0.0, 27.0, 50.0, 28.0, 29.0, 20.0, 12.0, 6.0, 17.0];
        let rho = spearman(&x, &y).unwrap();
        assert!((rho + 0.17575757575757575).abs() < 1e-9, "rho = {rho}");
    }
}
