//! Token bucket — the traffic-shaping primitive behind the budget manager (§5).
//!
//! A token bucket of depth `D` holds at most `D` tokens, starts with `TI`
//! tokens, and is refilled with `TR` tokens per period. The paper maps the
//! tenant's monetary budget onto this structure: tokens are budget units,
//! one period is one billing interval, `TR = Cmin` guarantees the cheapest
//! container is always affordable, and `D = B − (n−1)·Cmin` bounds the
//! maximum burst so the total spend can never exceed `B`.
//!
//! This module is deliberately generic (plain `f64` tokens); the budget
//! policy lives in `dasr-core::budget`.

/// A fixed-capacity token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    depth: f64,
    fill_rate: f64,
    tokens: f64,
}

impl TokenBucket {
    /// Creates a bucket with capacity `depth`, refill `fill_rate` per call to
    /// [`refill`](Self::refill), and `initial` starting tokens (clamped to
    /// the depth).
    ///
    /// # Panics
    /// Panics if `depth < 0`, `fill_rate < 0`, or `initial < 0`.
    pub fn new(depth: f64, fill_rate: f64, initial: f64) -> Self {
        assert!(depth >= 0.0, "depth must be non-negative");
        assert!(fill_rate >= 0.0, "fill rate must be non-negative");
        assert!(initial >= 0.0, "initial tokens must be non-negative");
        Self {
            depth,
            fill_rate,
            tokens: initial.min(depth),
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// Bucket capacity.
    pub fn depth(&self) -> f64 {
        self.depth
    }

    /// Refill amount per period.
    pub fn fill_rate(&self) -> f64 {
        self.fill_rate
    }

    /// Adds one period's worth of tokens, saturating at the depth.
    pub fn refill(&mut self) {
        self.tokens = (self.tokens + self.fill_rate).min(self.depth);
    }

    /// Attempts to consume `amount` tokens; returns `true` and deducts on
    /// success, leaves the bucket unchanged and returns `false` when fewer
    /// than `amount` tokens are available.
    ///
    /// # Panics
    /// Panics if `amount` is negative or non-finite.
    pub fn try_consume(&mut self, amount: f64) -> bool {
        assert!(
            amount >= 0.0 && amount.is_finite(),
            "invalid consume amount"
        );
        // Tolerate floating-point dust so that consuming exactly the balance
        // computed from the same arithmetic always succeeds.
        if amount <= self.tokens + 1e-9 {
            self.tokens = (self.tokens - amount).max(0.0);
            true
        } else {
            false
        }
    }

    /// Consumes up to `amount`, returning how much was actually consumed.
    pub fn consume_up_to(&mut self, amount: f64) -> f64 {
        assert!(
            amount >= 0.0 && amount.is_finite(),
            "invalid consume amount"
        );
        let taken = amount.min(self.tokens);
        self.tokens -= taken;
        taken
    }

    /// True when at least `amount` tokens are available.
    pub fn can_consume(&self, amount: f64) -> bool {
        amount <= self.tokens + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_is_clamped_to_depth() {
        let b = TokenBucket::new(10.0, 1.0, 100.0);
        assert_eq!(b.available(), 10.0);
    }

    #[test]
    fn refill_saturates() {
        let mut b = TokenBucket::new(5.0, 3.0, 4.0);
        b.refill();
        assert_eq!(b.available(), 5.0);
    }

    #[test]
    fn consume_success_and_failure() {
        let mut b = TokenBucket::new(10.0, 0.0, 6.0);
        assert!(b.try_consume(4.0));
        assert_eq!(b.available(), 2.0);
        assert!(!b.try_consume(3.0));
        assert_eq!(b.available(), 2.0, "failed consume must not change state");
        assert!(b.try_consume(2.0));
        assert_eq!(b.available(), 0.0);
    }

    #[test]
    fn consume_up_to_partial() {
        let mut b = TokenBucket::new(10.0, 0.0, 3.0);
        assert_eq!(b.consume_up_to(5.0), 3.0);
        assert_eq!(b.available(), 0.0);
    }

    #[test]
    fn spend_never_exceeds_initial_plus_refills() {
        // Conservation: over n periods, total successful consumption is
        // bounded by initial + n * fill_rate.
        let (depth, rate, init) = (100.0, 7.0, 100.0);
        let mut b = TokenBucket::new(depth, rate, init);
        let mut spent = 0.0;
        let n = 50;
        for i in 0..n {
            // Greedy: always try to take a big chunk.
            let want = if i % 3 == 0 { 40.0 } else { 5.0 };
            if b.try_consume(want) {
                spent += want;
            }
            b.refill();
        }
        assert!(
            spent <= init + n as f64 * rate + 1e-6,
            "spent {spent} exceeds budget"
        );
    }

    #[test]
    fn guaranteed_minimum_per_period() {
        // With fill_rate >= c, a consumer that takes exactly c each period
        // never fails (paper: TR = Cmin keeps the cheapest container
        // affordable forever).
        let c = 7.0;
        let mut b = TokenBucket::new(1000.0, c, 0.0);
        for _ in 0..1000 {
            b.refill();
            assert!(b.try_consume(c));
        }
    }

    #[test]
    fn floating_point_dust_tolerated() {
        let mut b = TokenBucket::new(1.0, 0.1, 0.0);
        for _ in 0..10 {
            b.refill();
        }
        // 10 * 0.1 may be 0.9999999999999999.
        assert!(b.try_consume(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid consume amount")]
    fn negative_consume_panics() {
        let mut b = TokenBucket::new(1.0, 1.0, 1.0);
        let _ = b.try_consume(-1.0);
    }
}
