//! Pearson product-moment correlation.
//!
//! Used directly by [`crate::spearman()`] (Spearman's ρ is the Pearson
//! correlation of ranks) and exposed for diagnostics.

/// Pearson correlation coefficient of paired samples `(x[i], y[i])`.
///
/// Pairs with a non-finite member are dropped. Returns `None` when fewer
/// than two pairs remain or either variable is constant (zero variance).
/// The result lies in `[-1, 1]` (clamped against rounding).
///
/// # Examples
/// ```
/// use dasr_stats::pearson;
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    if x.iter()
        .zip(y.iter())
        .all(|(a, b)| a.is_finite() && b.is_finite())
    {
        return pearson_of_finite(x, y);
    }
    let pts: Vec<(f64, f64)> = x
        .iter()
        .zip(y.iter())
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .collect();
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    pearson_of_finite(&xs, &ys)
}

/// Allocation-free Pearson correlation over slices already known to hold
/// only finite values of equal length (e.g. rank vectors). The hot-path
/// kernel behind [`pearson`].
pub fn pearson_of_finite(x: &[f64], y: &[f64]) -> Option<f64> {
    debug_assert_eq!(x.len(), y.len());
    if x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.5, "r = {r}");
    }

    #[test]
    fn constant_series_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).is_none());
    }

    #[test]
    fn nan_pairs_dropped() {
        let x = [1.0, f64::NAN, 2.0, 3.0];
        let y = [2.0, 100.0, 4.0, 6.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_short_is_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[], &[]).is_none());
    }
}
