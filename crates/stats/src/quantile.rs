//! Medians and percentiles.
//!
//! The paper aggregates fine-grained telemetry with *robust* statistics
//! (§3.1): the median has the best possible breakdown point (50%), whereas
//! the mean breaks down with a single corrupted observation. Two percentile
//! definitions are provided:
//!
//! - [`percentile`] — nearest-rank, matching what monitoring systems (and the
//!   paper's threshold derivation, §4.1) typically report;
//! - [`percentile_interpolated`] — linear interpolation between closest
//!   ranks, used where a smoother estimate matters (latency goals).

/// Returns the nearest-rank `p`-th percentile of `values` (`0.0 ..= 100.0`).
///
/// Returns `None` for an empty slice. Non-finite values are ignored; if all
/// values are non-finite the result is `None`.
///
/// The nearest-rank definition returns an element of the input, never an
/// interpolated value: for `p = 0` the minimum, for `p = 100` the maximum.
///
/// # Examples
/// ```
/// use dasr_stats::percentile;
/// let v = [15.0, 20.0, 35.0, 40.0, 50.0];
/// assert_eq!(percentile(&v, 30.0), Some(20.0));
/// assert_eq!(percentile(&v, 100.0), Some(50.0));
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    percentile_in(values, p, &mut Vec::new())
}

/// Scratch-buffer variant of [`percentile`] for hot paths: finite values are
/// copied into `scratch` (cleared first) and selected in place with
/// `select_nth_unstable` — O(n) instead of a full sort, and the caller's
/// buffer is reused across calls so steady state allocates nothing.
pub fn percentile_in(values: &[f64], p: f64, scratch: &mut Vec<f64>) -> Option<f64> {
    collect_finite_into(values, scratch);
    if scratch.is_empty() {
        return None;
    }
    Some(nearest_rank_select(scratch, p))
}

/// Nearest-rank percentile by in-place selection. Reorders `values`.
///
/// # Panics
/// Panics if `values` is empty. All values must be finite.
fn nearest_rank_select(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    let n = values.len();
    let rank = if p == 0.0 {
        1
    } else {
        (p / 100.0 * n as f64).ceil() as usize
    };
    let k = rank.clamp(1, n) - 1;
    *values
        .select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("finite"))
        .1
}

/// Clears `scratch` and fills it with the finite entries of `values`.
fn collect_finite_into(values: &[f64], scratch: &mut Vec<f64>) {
    scratch.clear();
    scratch.extend(values.iter().copied().filter(|v| v.is_finite()));
}

/// Nearest-rank percentile over an already sorted slice of finite values.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn nearest_rank_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if p == 0.0 {
        return sorted[0];
    }
    let n = sorted.len() as f64;
    let rank = (p / 100.0 * n).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Returns the linearly interpolated `p`-th percentile (`0.0 ..= 100.0`).
///
/// Uses the `(n - 1) * p` convention (NumPy's default). Returns `None` for an
/// empty slice; non-finite values are ignored.
///
/// # Examples
/// ```
/// use dasr_stats::percentile_interpolated;
/// let v = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_interpolated(&v, 50.0), Some(2.5));
/// ```
pub fn percentile_interpolated(values: &[f64], p: f64) -> Option<f64> {
    percentile_interpolated_in(values, p, &mut Vec::new())
}

/// Scratch-buffer variant of [`percentile_interpolated`]; see
/// [`percentile_in`] for the contract.
pub fn percentile_interpolated_in(values: &[f64], p: f64, scratch: &mut Vec<f64>) -> Option<f64> {
    collect_finite_into(values, scratch);
    if scratch.is_empty() {
        return None;
    }
    Some(interpolated_select(scratch, p))
}

/// Interpolated percentile by in-place selection: one `select_nth_unstable`
/// for the lower neighbor, then the upper neighbor is the minimum of the
/// right partition. Reorders `values`.
///
/// # Panics
/// Panics if `values` is empty. All values must be finite.
fn interpolated_select(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    let idx = (values.len() - 1) as f64 * p / 100.0;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let (_, lo_v, right) =
        values.select_nth_unstable_by(lo, |a, b| a.partial_cmp(b).expect("finite"));
    let lo_v = *lo_v;
    if lo == hi {
        lo_v
    } else {
        let hi_v = right.iter().copied().fold(f64::INFINITY, f64::min);
        let frac = idx - lo as f64;
        lo_v * (1.0 - frac) + hi_v * frac
    }
}

/// Interpolated percentile over an already sorted slice of finite values.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn interpolated_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    let idx = (sorted.len() - 1) as f64 * p / 100.0;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the median (50th percentile, interpolated for even lengths).
///
/// Returns `None` for an empty slice; non-finite values are ignored.
///
/// # Examples
/// ```
/// use dasr_stats::median;
/// assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
/// ```
pub fn median(values: &[f64]) -> Option<f64> {
    percentile_interpolated(values, 50.0)
}

/// Scratch-buffer variant of [`median`]; see [`percentile_in`] for the
/// contract.
pub fn median_in(values: &[f64], scratch: &mut Vec<f64>) -> Option<f64> {
    percentile_interpolated_in(values, 50.0, scratch)
}

/// In-place median via partial selection — avoids the extra allocation of
/// [`median`] for hot paths. Reorders `values`.
///
/// Returns `None` if the slice is empty or contains non-finite values.
pub fn median_of_mut(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let n = values.len();
    let mid = n / 2;
    let (_, upper_mid, _) =
        values.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite"));
    let upper = *upper_mid;
    if n % 2 == 1 {
        Some(upper)
    } else {
        // Even length: the lower-middle element is the max of the left part.
        let lower = values[..mid]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Some((lower + upper) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile_interpolated(&[], 50.0), None);
        assert_eq!(median(&[]), None);
        assert_eq!(median_of_mut(&mut []), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 100.0), Some(7.0));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median_of_mut(&mut [7.0]), Some(7.0));
    }

    #[test]
    fn nearest_rank_matches_wikipedia_example() {
        // Canonical nearest-rank example.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 5.0), Some(15.0));
        assert_eq!(percentile(&v, 30.0), Some(20.0));
        assert_eq!(percentile(&v, 40.0), Some(20.0));
        assert_eq!(percentile(&v, 50.0), Some(35.0));
        assert_eq!(percentile(&v, 95.0), Some(50.0));
    }

    #[test]
    fn interpolated_percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_interpolated(&v, 0.0), Some(1.0));
        assert_eq!(percentile_interpolated(&v, 25.0), Some(2.0));
        assert_eq!(percentile_interpolated(&v, 100.0), Some(5.0));
        assert_eq!(percentile_interpolated(&[1.0, 2.0], 75.0), Some(1.75));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[5.0, 1.0, 9.0]), Some(5.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn median_of_mut_matches_median() {
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![2.0, 1.0],
            vec![10.0, -5.0, 3.0, 3.0, 7.0],
            vec![0.0; 8],
            (0..101).map(f64::from).collect(),
        ];
        for case in cases {
            let expected = median(&case);
            let mut buf = case.clone();
            assert_eq!(median_of_mut(&mut buf), expected, "case {case:?}");
        }
    }

    #[test]
    fn non_finite_values_are_ignored() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), Some(2.0));
        assert_eq!(percentile(&[f64::INFINITY, 2.0], 100.0), Some(2.0));
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    fn median_breakdown_point_is_high() {
        // Corrupting < 50% of observations cannot drag the median beyond the
        // range of the clean data.
        let mut data: Vec<f64> = (0..100).map(|i| 50.0 + (i % 7) as f64).collect();
        for slot in data.iter_mut().take(49) {
            *slot = 1.0e12; // arbitrarily large corruption
        }
        let m = median(&data).unwrap();
        assert!((50.0..=56.0).contains(&m), "median {m} dragged by outliers");
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -5.0), Some(1.0));
        assert_eq!(percentile(&v, 250.0), Some(3.0));
    }

    #[test]
    fn selection_matches_full_sort_reference() {
        // The select_nth_unstable kernels must agree bit-for-bit with the
        // original sort-based definition across sizes and percentiles.
        let reference_nearest = |values: &[f64], p: f64| -> Option<f64> {
            let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
            if sorted.is_empty() {
                return None;
            }
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Some(nearest_rank_sorted(&sorted, p))
        };
        let reference_interp = |values: &[f64], p: f64| -> Option<f64> {
            let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
            if sorted.is_empty() {
                return None;
            }
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Some(interpolated_sorted(&sorted, p))
        };
        let mut scratch = Vec::new();
        for n in [1usize, 2, 3, 7, 10, 31, 100] {
            // Deterministic scrambled values with ties and a NaN.
            let mut v: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 3.0).collect();
            if n > 4 {
                v[2] = f64::NAN;
            }
            for p in [0.0, 5.0, 30.0, 50.0, 75.0, 95.0, 100.0] {
                assert_eq!(
                    percentile_in(&v, p, &mut scratch),
                    reference_nearest(&v, p),
                    "nearest n={n} p={p}"
                );
                assert_eq!(
                    percentile_interpolated_in(&v, p, &mut scratch),
                    reference_interp(&v, p),
                    "interp n={n} p={p}"
                );
            }
        }
    }

    #[test]
    fn scratch_variants_reuse_buffer() {
        let mut scratch = Vec::with_capacity(64);
        assert_eq!(median_in(&[3.0, 1.0, 2.0], &mut scratch), Some(2.0));
        let cap = scratch.capacity();
        assert_eq!(median_in(&[5.0, 4.0], &mut scratch), Some(4.5));
        assert_eq!(scratch.capacity(), cap, "no reallocation in steady state");
        assert_eq!(median_in(&[], &mut scratch), None);
    }
}
