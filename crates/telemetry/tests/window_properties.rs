//! Property test: the struct-of-arrays ring-buffer [`SampleWindow`] is
//! observationally identical — sample-for-sample, bit-for-bit — to the
//! VecDeque implementation this repo shipped with. The reference below *is*
//! that seed implementation: a `VecDeque<TelemetrySample>` whose series
//! accessors collect fresh vectors from the per-sample accessors.

use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_engine::{WaitClass, WAIT_CLASSES};
use dasr_telemetry::window::SampleWindow;
use dasr_telemetry::TelemetrySample;
use proptest::prelude::*;
use std::collections::VecDeque;

/// The seed's AoS window, kept verbatim as the behavioral oracle.
struct NaiveWindow {
    cap: usize,
    samples: VecDeque<TelemetrySample>,
}

impl NaiveWindow {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            samples: VecDeque::with_capacity(cap),
        }
    }

    fn push(&mut self, sample: TelemetrySample) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    fn recent(&self, n: usize) -> impl Iterator<Item = &TelemetrySample> {
        let skip = self.samples.len().saturating_sub(n);
        self.samples.iter().skip(skip)
    }

    fn util_series(&self, kind: ResourceKind, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.util(kind)).collect()
    }

    fn wait_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.wait(class)).collect()
    }

    fn wait_pct_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.wait_pct(class)).collect()
    }

    fn wait_per_request_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n)
            .map(|s| s.wait(class) / (s.completed.max(1) as f64))
            .collect()
    }

    fn latency_series(&self, n: usize) -> Vec<f64> {
        self.recent(n)
            .map(|s| s.latency_ms.unwrap_or(f64::NAN))
            .collect()
    }
}

fn build_sample(
    interval: u64,
    util: f64,
    wait: f64,
    completed: u64,
    has_latency: bool,
) -> TelemetrySample {
    let mut util_pct = [0.0; 4];
    for (i, slot) in util_pct.iter_mut().enumerate() {
        *slot = (util + 13.7 * i as f64) % 100.0;
    }
    let mut wait_ms = [0.0; 7];
    for (i, slot) in wait_ms.iter_mut().enumerate() {
        *slot = wait * (1.0 + i as f64 * 0.31);
    }
    TelemetrySample {
        interval,
        util_pct,
        wait_ms,
        latency_ms: has_latency.then_some(10.0 + util),
        avg_latency_ms: has_latency.then_some(5.0 + util),
        completed,
        arrivals: completed,
        rejected: 0,
        mem_used_mb: util * 10.0,
        mem_capacity_mb: 2048.0,
        disk_reads_per_sec: wait * 0.1,
    }
}

/// Bit patterns of a float slice — equality that treats NaN == NaN, so the
/// comparison is truly bit-for-bit.
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every push, every series accessor of the SoA window matches the
    /// VecDeque reference exactly, for tail lengths below, at, and above the
    /// capacity — including NaN slots from idle (no-latency) intervals and
    /// the completed==0 division floor.
    #[test]
    fn soa_window_matches_vecdeque_reference(
        cap in 1usize..12,
        pushes in prop::collection::vec(
            (0.0..200.0f64, 0.0..5.0e3f64, 0u64..6, proptest::prelude::any::<bool>()),
            1..40,
        ),
    ) {
        let mut soa = SampleWindow::new(cap);
        let mut reference = NaiveWindow::new(cap);
        for (i, &(util, wait, completed, has_latency)) in pushes.iter().enumerate() {
            let s = build_sample(i as u64, util, wait, completed, has_latency);
            soa.push(s);
            reference.push(s);

            prop_assert_eq!(soa.len(), reference.samples.len());
            prop_assert_eq!(soa.capacity(), cap);
            prop_assert_eq!(
                soa.latest().map(|s| s.interval),
                reference.samples.back().map(|s| s.interval)
            );
            let got: Vec<u64> = soa.iter().map(|s| s.interval).collect();
            let want: Vec<u64> = reference.samples.iter().map(|s| s.interval).collect();
            prop_assert_eq!(got, want);

            for n in [0, 1, cap / 2, cap, cap + 3] {
                let got: Vec<u64> = soa.recent(n).map(|s| s.interval).collect();
                let want: Vec<u64> = reference.recent(n).map(|s| s.interval).collect();
                prop_assert_eq!(got, want, "recent({}) diverges", n);
                for kind in RESOURCE_KINDS {
                    prop_assert_eq!(
                        bits(soa.util_series(kind, n)),
                        bits(&reference.util_series(kind, n)),
                        "util {:?} n={}", kind, n
                    );
                }
                for class in WAIT_CLASSES {
                    prop_assert_eq!(
                        bits(soa.wait_series(class, n)),
                        bits(&reference.wait_series(class, n)),
                        "wait {:?} n={}", class, n
                    );
                    prop_assert_eq!(
                        bits(soa.wait_pct_series(class, n)),
                        bits(&reference.wait_pct_series(class, n)),
                        "wait_pct {:?} n={}", class, n
                    );
                    prop_assert_eq!(
                        bits(soa.wait_per_request_series(class, n)),
                        bits(&reference.wait_per_request_series(class, n)),
                        "wait_per_request {:?} n={}", class, n
                    );
                }
                prop_assert_eq!(
                    bits(soa.latency_series(n)),
                    bits(&reference.latency_series(n)),
                    "latency n={}", n
                );
            }
        }
    }
}
