//! Signal thresholds and their derivation from service-wide telemetry (§4.1).
//!
//! Latency and utilization thresholds are straightforward (the tenant's goal
//! splits GOOD/BAD; administrators' 30/70 rules split LOW/MEDIUM/HIGH).
//! Wait thresholds are not: Figure 4 shows waits spanning six orders of
//! magnitude at any utilization. The paper's approach — reproduced in
//! [`derive_wait_thresholds`] — is to split fleet-wide wait observations by
//! the corresponding resource's utilization (low <30%, high >70%) and read
//! thresholds off the two conditional distributions, which Figure 6 shows
//! are clearly separated.

use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_stats::percentile;

/// Wait-time category boundaries for one resource, in milliseconds per
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitThresholds {
    /// Waits at or below this are LOW.
    pub low_ms: f64,
    /// Waits at or above this are HIGH (between: MEDIUM).
    pub high_ms: f64,
    /// Percentage waits at or above this are SIGNIFICANT.
    pub significant_pct: f64,
}

impl WaitThresholds {
    /// Validates the invariant `low <= high`.
    pub fn validated(self) -> Self {
        assert!(
            self.low_ms <= self.high_ms,
            "wait thresholds inverted: low {} > high {}",
            self.low_ms,
            self.high_ms
        );
        assert!(
            (0.0..=100.0).contains(&self.significant_pct),
            "significant_pct out of range"
        );
        self
    }
}

/// All thresholds the categorizer needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdConfig {
    /// Utilization at or below this is LOW (paper: 30%).
    pub util_low_pct: f64,
    /// Utilization at or above this is HIGH (paper: 70–80%).
    pub util_high_pct: f64,
    /// Per-resource wait thresholds.
    pub waits: [WaitThresholds; RESOURCE_KINDS.len()],
}

impl Default for ThresholdConfig {
    /// Defaults for the closed-loop telemetry manager, which normalizes
    /// wait magnitudes to **milliseconds per completed request** so the
    /// categories are throughput-invariant (the paper instead re-derives
    /// absolute thresholds per container size and cluster; normalization is
    /// the single-knob equivalent). A healthy request waits well under
    /// 2 ms per resource; sustained governor throttling pushes per-request
    /// waits past 25 ms.
    fn default() -> Self {
        let default_wait = WaitThresholds {
            low_ms: 2.0,
            high_ms: 25.0,
            significant_pct: 40.0,
        };
        Self {
            util_low_pct: 30.0,
            util_high_pct: 70.0,
            waits: [default_wait; RESOURCE_KINDS.len()],
        }
    }
}

impl ThresholdConfig {
    /// Absolute per-5-minute-interval thresholds mirroring the paper's
    /// published illustrative numbers (§4.1: LOW cut-offs near 20 s, HIGH
    /// cut-offs of 500–1500 s per 5-minute interval). Used by the
    /// fleet-wide analyses; services derive the real numbers from their
    /// own fleet (see `dasr-fleet`).
    pub fn fleet_absolute() -> Self {
        let default_wait = WaitThresholds {
            low_ms: 20_000.0,
            high_ms: 500_000.0,
            significant_pct: 40.0,
        };
        Self {
            util_low_pct: 30.0,
            util_high_pct: 70.0,
            waits: [default_wait; RESOURCE_KINDS.len()],
        }
    }
}

impl ThresholdConfig {
    /// Wait thresholds for one resource dimension.
    pub fn waits_for(&self, kind: ResourceKind) -> &WaitThresholds {
        &self.waits[kind.index()]
    }

    /// Mutable wait thresholds for one resource dimension.
    pub fn waits_for_mut(&mut self, kind: ResourceKind) -> &mut WaitThresholds {
        &mut self.waits[kind.index()]
    }

    /// Checks invariants on every field.
    pub fn validated(self) -> Self {
        assert!(
            0.0 <= self.util_low_pct
                && self.util_low_pct < self.util_high_pct
                && self.util_high_pct <= 100.0,
            "utilization thresholds must satisfy 0 <= low < high <= 100"
        );
        for w in &self.waits {
            let _ = w.validated();
        }
        self
    }
}

/// Derives wait thresholds for one resource from fleet-wide conditional
/// distributions (§4.1):
///
/// - `LOW` cut-off: the 90th percentile of waits observed while the
///   resource's utilization was *low* — below it, waits look like the idle
///   population;
/// - `HIGH` cut-off: the 75th percentile of waits observed while
///   utilization was *high*;
/// - `SIGNIFICANT` percentage: the midpoint between the 80th percentile of
///   percentage-waits under low utilization (Fig 6(c): 20–30%) and the
///   median percentage-waits under high utilization (Fig 6(d): 60–95%).
///
/// Returns `None` when either conditional sample is empty (not enough fleet
/// data — keep the previous thresholds).
pub fn derive_wait_thresholds(
    wait_ms_low_util: &[f64],
    wait_ms_high_util: &[f64],
    wait_pct_low_util: &[f64],
    wait_pct_high_util: &[f64],
) -> Option<WaitThresholds> {
    let low_ms = percentile(wait_ms_low_util, 90.0)?;
    let high_ms = percentile(wait_ms_high_util, 75.0)?;
    let pct_low = percentile(wait_pct_low_util, 80.0)?;
    let pct_high = percentile(wait_pct_high_util, 50.0)?;
    // Degenerate fleets can invert the separation; clamp to keep the
    // invariant rather than reject (the paper re-tunes continuously).
    let high_ms = high_ms.max(low_ms);
    let significant_pct = ((pct_low + pct_high) / 2.0).clamp(0.0, 100.0);
    Some(
        WaitThresholds {
            low_ms,
            high_ms,
            significant_pct,
        }
        .validated(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let _ = ThresholdConfig::default().validated();
    }

    #[test]
    fn derive_from_separated_distributions() {
        // Low-util waits cluster near 1s; high-util waits near 200s.
        let low: Vec<f64> = (0..100).map(|i| 500.0 + 10.0 * i as f64).collect();
        let high: Vec<f64> = (0..100).map(|i| 150_000.0 + 1_000.0 * i as f64).collect();
        let pct_low: Vec<f64> = (0..100).map(|i| 10.0 + 0.2 * i as f64).collect();
        let pct_high: Vec<f64> = (0..100).map(|i| 60.0 + 0.3 * i as f64).collect();
        let t = derive_wait_thresholds(&low, &high, &pct_low, &pct_high).unwrap();
        assert!((1_000.0..1_500.0).contains(&t.low_ms), "low {}", t.low_ms);
        assert!(
            (220_000.0..230_000.0).contains(&t.high_ms),
            "high {}",
            t.high_ms
        );
        // Midpoint of ~26% and ~75%.
        assert!((45.0..56.0).contains(&t.significant_pct));
        assert!(t.low_ms < t.high_ms);
    }

    #[test]
    fn derive_with_empty_sample_is_none() {
        assert!(derive_wait_thresholds(&[], &[1.0], &[1.0], &[1.0]).is_none());
        assert!(derive_wait_thresholds(&[1.0], &[1.0], &[1.0], &[]).is_none());
    }

    #[test]
    fn derive_clamps_inverted_distributions() {
        // Pathological fleet where "high util" waits are smaller.
        let low = vec![100.0; 50];
        let high = vec![1.0; 50];
        let pct = vec![50.0; 50];
        let t = derive_wait_thresholds(&low, &high, &pct, &pct).unwrap();
        assert!(t.low_ms <= t.high_ms);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn validated_rejects_inverted() {
        let _ = WaitThresholds {
            low_ms: 10.0,
            high_ms: 1.0,
            significant_pct: 50.0,
        }
        .validated();
    }

    #[test]
    fn per_resource_access() {
        let mut cfg = ThresholdConfig::default();
        cfg.waits_for_mut(ResourceKind::DiskIo).high_ms = 9_999.0;
        assert_eq!(cfg.waits_for(ResourceKind::DiskIo).high_ms, 9_999.0);
        assert_ne!(cfg.waits_for(ResourceKind::Cpu).high_ms, 9_999.0);
    }
}
