//! Bounded history of telemetry samples with series extraction.
//!
//! The window is stored struct-of-arrays: every derived channel the signal
//! pipeline reads (per-resource utilization, per-wait-class magnitudes,
//! percentages and per-request magnitudes, aggregated latency) lives in its
//! own contiguous f64 ring, written once at [`SampleWindow::push`] time. Each
//! ring is *mirrored* — values are written at `pos` and `pos + cap` — so the
//! last `n` samples of any channel are always one contiguous slice and the
//! `*_series` accessors are zero-copy views instead of freshly collected
//! vectors. The full [`TelemetrySample`] structs are kept in a plain (single)
//! ring for [`SampleWindow::latest`] / [`SampleWindow::iter`] /
//! [`SampleWindow::recent`].

use crate::counters::TelemetrySample;
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_engine::waits::WAIT_CLASSES;
use dasr_engine::WaitClass;

/// A bounded FIFO window of [`TelemetrySample`]s with zero-copy series
/// extraction.
///
/// # Examples
///
/// ```
/// use dasr_containers::ResourceKind;
/// use dasr_telemetry::window::SampleWindow;
/// use dasr_telemetry::TelemetrySample;
///
/// let mut w = SampleWindow::new(3);
/// for i in 0..5u64 {
///     w.push(TelemetrySample {
///         interval: i,
///         util_pct: [10.0 * i as f64, 0.0, 0.0, 0.0],
///         wait_ms: [0.0; 7],
///         latency_ms: Some(8.0),
///         avg_latency_ms: Some(6.0),
///         completed: 100,
///         arrivals: 100,
///         rejected: 0,
///         mem_used_mb: 512.0,
///         mem_capacity_mb: 1024.0,
///         disk_reads_per_sec: 0.0,
///     });
/// }
/// // Only the last `cap` samples survive…
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.latest().unwrap().interval, 4);
/// // …and every series is one contiguous zero-copy slice, oldest → newest.
/// assert_eq!(w.util_series(ResourceKind::Cpu, 3), &[20.0, 30.0, 40.0]);
/// ```
#[derive(Debug, Clone)]
pub struct SampleWindow {
    cap: usize,
    len: usize,
    /// Next write slot in `0..cap`. During the fill phase `pos == len`.
    pos: usize,
    /// Struct ring (length grows to `cap`); element `i` holds the sample
    /// written at ring slot `i`.
    samples: Vec<TelemetrySample>,
    /// Mirrored rings, each `2 * cap` long with `ring[i] == ring[i + cap]`
    /// for every written slot; unwritten slots hold NaN.
    util: [Vec<f64>; RESOURCE_KINDS.len()],
    wait: [Vec<f64>; WAIT_CLASSES.len()],
    wait_pct: [Vec<f64>; WAIT_CLASSES.len()],
    wait_per_request: [Vec<f64>; WAIT_CLASSES.len()],
    latency: Vec<f64>,
}

impl SampleWindow {
    /// Creates a window keeping the last `cap` samples.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        let ring = || vec![f64::NAN; 2 * cap];
        Self {
            cap,
            len: 0,
            pos: 0,
            samples: Vec::with_capacity(cap),
            util: std::array::from_fn(|_| ring()),
            wait: std::array::from_fn(|_| ring()),
            wait_pct: std::array::from_fn(|_| ring()),
            wait_per_request: std::array::from_fn(|_| ring()),
            latency: ring(),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: TelemetrySample) {
        let (p, cap) = (self.pos, self.cap);
        let mirror = |ring: &mut [f64], v: f64| {
            ring[p] = v;
            ring[p + cap] = v;
        };
        for kind in RESOURCE_KINDS {
            mirror(&mut self.util[kind.index()], sample.util(kind));
        }
        // Plain division (not multiply-by-reciprocal) keeps the stored
        // values bit-identical to computing `wait / completed` on demand.
        let completed = sample.completed.max(1) as f64;
        for class in WAIT_CLASSES {
            let w = sample.wait(class);
            mirror(&mut self.wait[class.index()], w);
            mirror(&mut self.wait_pct[class.index()], sample.wait_pct(class));
            mirror(&mut self.wait_per_request[class.index()], w / completed);
        }
        mirror(&mut self.latency, sample.latency_ms.unwrap_or(f64::NAN));

        if self.samples.len() < cap {
            debug_assert_eq!(p, self.samples.len());
            self.samples.push(sample);
        } else {
            self.samples[p] = sample;
        }
        self.pos = (p + 1) % cap;
        self.len = (self.len + 1).min(cap);
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of samples retained before eviction starts.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&TelemetrySample> {
        if self.len == 0 {
            None
        } else {
            Some(&self.samples[(self.pos + self.cap - 1) % self.cap])
        }
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetrySample> {
        self.recent(self.len)
    }

    /// The last `n` samples (oldest → newest), fewer if not enough history.
    /// Zero-cost: yields from at most two ring slices, no allocation.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &TelemetrySample> {
        let k = n.min(self.len);
        let start = (self.pos + self.cap - k) % self.cap;
        let (head, tail) = if start + k <= self.samples.len() {
            (&self.samples[start..start + k], &self.samples[..0])
        } else {
            let split = self.samples.len() - start;
            (&self.samples[start..], &self.samples[..k - split])
        };
        head.iter().chain(tail.iter())
    }

    /// Contiguous view of the last `min(n, len)` entries of a mirrored ring.
    fn series_tail<'a>(&self, ring: &'a [f64], n: usize) -> &'a [f64] {
        let k = n.min(self.len);
        let end = self.pos + self.cap;
        &ring[end - k..end]
    }

    /// Utilization series of one resource over the last `n` samples.
    pub fn util_series(&self, kind: ResourceKind, n: usize) -> &[f64] {
        self.series_tail(&self.util[kind.index()], n)
    }

    /// Wait-ms series of one class over the last `n` samples.
    pub fn wait_series(&self, class: WaitClass, n: usize) -> &[f64] {
        self.series_tail(&self.wait[class.index()], n)
    }

    /// Wait-percentage series of one class over the last `n` samples.
    pub fn wait_pct_series(&self, class: WaitClass, n: usize) -> &[f64] {
        self.series_tail(&self.wait_pct[class.index()], n)
    }

    /// Wait-ms-per-completed-request series of one class over the last `n`
    /// samples (throughput-invariant magnitudes; idle intervals yield 0).
    pub fn wait_per_request_series(&self, class: WaitClass, n: usize) -> &[f64] {
        self.series_tail(&self.wait_per_request[class.index()], n)
    }

    /// Aggregated-latency series over the last `n` samples (idle intervals
    /// yield `NAN`, which the robust statistics ignore).
    pub fn latency_series(&self, n: usize) -> &[f64] {
        self.series_tail(&self.latency, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        interval: u64,
        cpu_util: f64,
        cpu_wait: f64,
        latency: Option<f64>,
    ) -> TelemetrySample {
        let mut util_pct = [0.0; 4];
        util_pct[ResourceKind::Cpu.index()] = cpu_util;
        let mut wait_ms = [0.0; 7];
        wait_ms[WaitClass::Cpu.index()] = cpu_wait;
        TelemetrySample {
            interval,
            util_pct,
            wait_ms,
            latency_ms: latency,
            avg_latency_ms: latency,
            completed: 1,
            arrivals: 1,
            rejected: 0,
            mem_used_mb: 0.0,
            mem_capacity_mb: 1.0,
            disk_reads_per_sec: 0.0,
        }
    }

    #[test]
    fn bounded_eviction() {
        let mut w = SampleWindow::new(3);
        for i in 0..5 {
            w.push(sample(i, i as f64, 0.0, None));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.latest().unwrap().interval, 4);
        let series = w.util_series(ResourceKind::Cpu, 10);
        assert_eq!(series, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn recent_takes_tail() {
        let mut w = SampleWindow::new(10);
        for i in 0..6 {
            w.push(sample(i, i as f64, 10.0 * i as f64, Some(i as f64)));
        }
        assert_eq!(w.util_series(ResourceKind::Cpu, 2), vec![4.0, 5.0]);
        assert_eq!(w.wait_series(WaitClass::Cpu, 2), vec![40.0, 50.0]);
        assert_eq!(w.latency_series(2), vec![4.0, 5.0]);
    }

    #[test]
    fn idle_latency_is_nan() {
        let mut w = SampleWindow::new(4);
        w.push(sample(0, 0.0, 0.0, None));
        w.push(sample(1, 0.0, 0.0, Some(7.0)));
        let lat = w.latency_series(4);
        assert!(lat[0].is_nan());
        assert_eq!(lat[1], 7.0);
    }

    #[test]
    fn wait_pct_series_computed_per_sample() {
        let mut w = SampleWindow::new(4);
        let mut s = sample(0, 0.0, 30.0, None);
        s.wait_ms[WaitClass::Lock.index()] = 70.0;
        w.push(s);
        assert_eq!(w.wait_pct_series(WaitClass::Cpu, 4), vec![30.0]);
        assert_eq!(w.wait_pct_series(WaitClass::Lock, 4), vec![70.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_cap_panics() {
        let _ = SampleWindow::new(0);
    }

    #[test]
    fn recent_and_iter_across_wrap() {
        let mut w = SampleWindow::new(4);
        for i in 0..11 {
            w.push(sample(i, i as f64, 0.0, None));
        }
        let intervals: Vec<u64> = w.iter().map(|s| s.interval).collect();
        assert_eq!(intervals, vec![7, 8, 9, 10]);
        let last2: Vec<u64> = w.recent(2).map(|s| s.interval).collect();
        assert_eq!(last2, vec![9, 10]);
        assert_eq!(w.recent(0).count(), 0);
        assert_eq!(w.capacity(), 4);
    }

    #[test]
    fn series_are_contiguous_after_many_wraps() {
        // Push far past capacity at every alignment and check every tail
        // length against the per-sample accessors.
        for cap in [1usize, 2, 3, 5, 8] {
            let mut w = SampleWindow::new(cap);
            for i in 0..(3 * cap as u64 + 1) {
                w.push(sample(i, i as f64 * 1.5, i as f64 * 2.0, Some(i as f64)));
                for n in 0..=cap + 2 {
                    let expect: Vec<f64> = w.recent(n).map(|s| s.util(ResourceKind::Cpu)).collect();
                    assert_eq!(w.util_series(ResourceKind::Cpu, n), &expect[..]);
                    let expect: Vec<f64> = w.recent(n).map(|s| s.wait(WaitClass::Cpu)).collect();
                    assert_eq!(w.wait_series(WaitClass::Cpu, n), &expect[..]);
                }
            }
        }
    }

    #[test]
    fn wait_per_request_uses_completed_floor() {
        let mut w = SampleWindow::new(2);
        let mut s = sample(0, 0.0, 50.0, None);
        s.completed = 0; // idle interval: divide by max(1)
        w.push(s);
        let mut s = sample(1, 0.0, 60.0, None);
        s.completed = 4;
        w.push(s);
        assert_eq!(
            w.wait_per_request_series(WaitClass::Cpu, 2),
            vec![50.0, 15.0]
        );
    }
}
