//! Bounded history of telemetry samples with series extraction.

use crate::counters::TelemetrySample;
use dasr_containers::ResourceKind;
use dasr_engine::WaitClass;
use std::collections::VecDeque;

/// A bounded FIFO window of [`TelemetrySample`]s.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    cap: usize,
    samples: VecDeque<TelemetrySample>,
}

impl SampleWindow {
    /// Creates a window keeping the last `cap` samples.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        Self {
            cap,
            samples: VecDeque::with_capacity(cap),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: TelemetrySample) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Number of samples held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&TelemetrySample> {
        self.samples.back()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TelemetrySample> {
        self.samples.iter()
    }

    /// The last `n` samples (oldest → newest), fewer if not enough history.
    pub fn recent(&self, n: usize) -> impl Iterator<Item = &TelemetrySample> {
        let skip = self.samples.len().saturating_sub(n);
        self.samples.iter().skip(skip)
    }

    /// Utilization series of one resource over the last `n` samples.
    pub fn util_series(&self, kind: ResourceKind, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.util(kind)).collect()
    }

    /// Wait-ms series of one class over the last `n` samples.
    pub fn wait_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.wait(class)).collect()
    }

    /// Wait-percentage series of one class over the last `n` samples.
    pub fn wait_pct_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n).map(|s| s.wait_pct(class)).collect()
    }

    /// Wait-ms-per-completed-request series of one class over the last `n`
    /// samples (throughput-invariant magnitudes; idle intervals yield 0).
    pub fn wait_per_request_series(&self, class: WaitClass, n: usize) -> Vec<f64> {
        self.recent(n)
            .map(|s| s.wait(class) / (s.completed.max(1) as f64))
            .collect()
    }

    /// Aggregated-latency series over the last `n` samples (idle intervals
    /// yield `NAN`, which the robust statistics ignore).
    pub fn latency_series(&self, n: usize) -> Vec<f64> {
        self.recent(n)
            .map(|s| s.latency_ms.unwrap_or(f64::NAN))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        interval: u64,
        cpu_util: f64,
        cpu_wait: f64,
        latency: Option<f64>,
    ) -> TelemetrySample {
        let mut util_pct = [0.0; 4];
        util_pct[ResourceKind::Cpu.index()] = cpu_util;
        let mut wait_ms = [0.0; 7];
        wait_ms[WaitClass::Cpu.index()] = cpu_wait;
        TelemetrySample {
            interval,
            util_pct,
            wait_ms,
            latency_ms: latency,
            avg_latency_ms: latency,
            completed: 1,
            arrivals: 1,
            rejected: 0,
            mem_used_mb: 0.0,
            mem_capacity_mb: 1.0,
            disk_reads_per_sec: 0.0,
        }
    }

    #[test]
    fn bounded_eviction() {
        let mut w = SampleWindow::new(3);
        for i in 0..5 {
            w.push(sample(i, i as f64, 0.0, None));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.latest().unwrap().interval, 4);
        let series = w.util_series(ResourceKind::Cpu, 10);
        assert_eq!(series, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn recent_takes_tail() {
        let mut w = SampleWindow::new(10);
        for i in 0..6 {
            w.push(sample(i, i as f64, 10.0 * i as f64, Some(i as f64)));
        }
        assert_eq!(w.util_series(ResourceKind::Cpu, 2), vec![4.0, 5.0]);
        assert_eq!(w.wait_series(WaitClass::Cpu, 2), vec![40.0, 50.0]);
        assert_eq!(w.latency_series(2), vec![4.0, 5.0]);
    }

    #[test]
    fn idle_latency_is_nan() {
        let mut w = SampleWindow::new(4);
        w.push(sample(0, 0.0, 0.0, None));
        w.push(sample(1, 0.0, 0.0, Some(7.0)));
        let lat = w.latency_series(4);
        assert!(lat[0].is_nan());
        assert_eq!(lat[1], 7.0);
    }

    #[test]
    fn wait_pct_series_computed_per_sample() {
        let mut w = SampleWindow::new(4);
        let mut s = sample(0, 0.0, 30.0, None);
        s.wait_ms[WaitClass::Lock.index()] = 70.0;
        w.push(s);
        assert_eq!(w.wait_pct_series(WaitClass::Cpu, 4), vec![30.0]);
        assert_eq!(w.wait_pct_series(WaitClass::Lock, 4), vec![70.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_cap_panics() {
        let _ = SampleWindow::new(0);
    }
}
