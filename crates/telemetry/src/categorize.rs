//! Categorization: continuous signals → semantic categories (§4.1).
//!
//! "Once thresholds are applied to the signals, it transforms the signals
//! from a continuous value domain to a categorical value domain where each
//! category has easy-to-understand semantics" — the property that makes the
//! rule hierarchy explainable.

use crate::thresholds::{ThresholdConfig, WaitThresholds};
use dasr_containers::ResourceKind;
use std::fmt;

/// Utilization category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UtilLevel {
    /// Below the low threshold.
    Low,
    /// Between thresholds.
    Medium,
    /// At or above the high threshold.
    High,
}

/// Wait-time (magnitude) category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitTimeLevel {
    /// At or below the low cut-off.
    Low,
    /// Between cut-offs.
    Medium,
    /// At or above the high cut-off.
    High,
}

/// Wait-percentage category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPctLevel {
    /// Below the significance threshold.
    NotSignificant,
    /// At or above the significance threshold.
    Significant,
}

/// Latency verdict against the tenant's goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyVerdict {
    /// The goal is met (or no goal / no traffic).
    Good,
    /// The goal is violated.
    Bad,
}

impl fmt::Display for UtilLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UtilLevel::Low => "LOW",
            UtilLevel::Medium => "MEDIUM",
            UtilLevel::High => "HIGH",
        })
    }
}

impl fmt::Display for WaitTimeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WaitTimeLevel::Low => "LOW",
            WaitTimeLevel::Medium => "MEDIUM",
            WaitTimeLevel::High => "HIGH",
        })
    }
}

impl fmt::Display for WaitPctLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WaitPctLevel::NotSignificant => "NOT SIGNIFICANT",
            WaitPctLevel::Significant => "SIGNIFICANT",
        })
    }
}

impl fmt::Display for LatencyVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LatencyVerdict::Good => "GOOD",
            LatencyVerdict::Bad => "BAD",
        })
    }
}

/// One resource dimension's complete categorical snapshot — the §4.1
/// categorical value domain as a value.
///
/// The rule engine's predicates (`dasr-core::rules`) match on this struct
/// rather than re-deriving categories from the continuous signals, so a
/// decision trace can record *exactly* the categorical facts the rules saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceCategories {
    /// Utilization category.
    pub util: UtilLevel,
    /// Wait-magnitude category.
    pub wait: WaitTimeLevel,
    /// Wait-percentage category.
    pub wait_pct: WaitPctLevel,
}

impl fmt::Display for ResourceCategories {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "util {} / waits {} / share {}",
            self.util, self.wait, self.wait_pct
        )
    }
}

/// Categorizes a utilization percentage.
pub fn categorize_util(cfg: &ThresholdConfig, util_pct: f64) -> UtilLevel {
    if util_pct >= cfg.util_high_pct {
        UtilLevel::High
    } else if util_pct <= cfg.util_low_pct {
        UtilLevel::Low
    } else {
        UtilLevel::Medium
    }
}

/// Categorizes a wait magnitude (ms per interval) against `thresholds`.
pub fn categorize_wait_ms(thresholds: &WaitThresholds, wait_ms: f64) -> WaitTimeLevel {
    if wait_ms >= thresholds.high_ms {
        WaitTimeLevel::High
    } else if wait_ms <= thresholds.low_ms {
        WaitTimeLevel::Low
    } else {
        WaitTimeLevel::Medium
    }
}

/// Categorizes a wait percentage against `thresholds`.
pub fn categorize_wait_pct(thresholds: &WaitThresholds, wait_pct: f64) -> WaitPctLevel {
    if wait_pct >= thresholds.significant_pct {
        WaitPctLevel::Significant
    } else {
        WaitPctLevel::NotSignificant
    }
}

/// Categorizes a resource's utilization with the per-resource thresholds.
pub fn categorize_resource_util(
    cfg: &ThresholdConfig,
    _kind: ResourceKind,
    util_pct: f64,
) -> UtilLevel {
    categorize_util(cfg, util_pct)
}

/// Categorizes latency against a goal; `None` latency (idle interval) is
/// GOOD — no traffic cannot violate a goal.
pub fn categorize_latency(observed_ms: Option<f64>, goal_ms: Option<f64>) -> LatencyVerdict {
    match (observed_ms, goal_ms) {
        (Some(obs), Some(goal)) if obs > goal => LatencyVerdict::Bad,
        _ => LatencyVerdict::Good,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ThresholdConfig {
        ThresholdConfig::default()
    }

    #[test]
    fn utilization_boundaries() {
        let c = cfg(); // low 30, high 70
        assert_eq!(categorize_util(&c, 0.0), UtilLevel::Low);
        assert_eq!(categorize_util(&c, 30.0), UtilLevel::Low);
        assert_eq!(categorize_util(&c, 30.1), UtilLevel::Medium);
        assert_eq!(categorize_util(&c, 69.9), UtilLevel::Medium);
        assert_eq!(categorize_util(&c, 70.0), UtilLevel::High);
        assert_eq!(categorize_util(&c, 100.0), UtilLevel::High);
    }

    #[test]
    fn wait_boundaries() {
        let t = WaitThresholds {
            low_ms: 10.0,
            high_ms: 100.0,
            significant_pct: 40.0,
        };
        assert_eq!(categorize_wait_ms(&t, 5.0), WaitTimeLevel::Low);
        assert_eq!(categorize_wait_ms(&t, 10.0), WaitTimeLevel::Low);
        assert_eq!(categorize_wait_ms(&t, 50.0), WaitTimeLevel::Medium);
        assert_eq!(categorize_wait_ms(&t, 100.0), WaitTimeLevel::High);
        assert_eq!(categorize_wait_pct(&t, 39.9), WaitPctLevel::NotSignificant);
        assert_eq!(categorize_wait_pct(&t, 40.0), WaitPctLevel::Significant);
    }

    #[test]
    fn latency_verdicts() {
        assert_eq!(
            categorize_latency(Some(99.0), Some(100.0)),
            LatencyVerdict::Good
        );
        assert_eq!(
            categorize_latency(Some(100.0), Some(100.0)),
            LatencyVerdict::Good
        );
        assert_eq!(
            categorize_latency(Some(101.0), Some(100.0)),
            LatencyVerdict::Bad
        );
        assert_eq!(categorize_latency(None, Some(100.0)), LatencyVerdict::Good);
        assert_eq!(categorize_latency(Some(1e9), None), LatencyVerdict::Good);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(UtilLevel::Low < UtilLevel::Medium);
        assert!(UtilLevel::Medium < UtilLevel::High);
        assert!(WaitTimeLevel::Low < WaitTimeLevel::High);
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(UtilLevel::High.to_string(), "HIGH");
        assert_eq!(WaitPctLevel::Significant.to_string(), "SIGNIFICANT");
        assert_eq!(LatencyVerdict::Bad.to_string(), "BAD");
    }
}
