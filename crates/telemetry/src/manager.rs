//! The Telemetry Manager: samples in, robust signal sets out (§3).

use crate::categorize::{
    categorize_latency, categorize_util, categorize_wait_ms, categorize_wait_pct,
};
use crate::counters::{LatencyGoal, TelemetrySample};
use crate::signals::{wait_class_for, LatencySignals, ResourceSignals, SignalSet};
use crate::thresholds::ThresholdConfig;
use crate::window::SampleWindow;
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_engine::WaitClass;
use dasr_stats::{median_in, spearman_in, SpearmanScratch, TheilSen, TrendScratch};

/// Telemetry-manager tuning.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Samples retained for analysis.
    pub window_cap: usize,
    /// Samples medianed for the level signals (robust aggregation, §3.1).
    pub smoothing_window: usize,
    /// Samples fed to the Theil–Sen trend detector (§3.2.1).
    pub trend_window: usize,
    /// Samples fed to the Spearman correlation (§3.2.2).
    pub corr_window: usize,
    /// Theil–Sen sign-agreement acceptance threshold α (paper: 0.70).
    pub trend_alpha: f64,
    /// Materiality guard: a trend is also rejected when its projected
    /// change over the window is below this fraction of the series'
    /// median level — flat-but-noisy series occasionally pass the sign
    /// test, and chasing a 2% drift would thrash containers.
    pub trend_min_relative_change: f64,
    /// Thresholds for categorization (§4.1).
    pub thresholds: ThresholdConfig,
    /// Normalize wait magnitudes to ms per completed request before
    /// categorization and trend detection (throughput-invariant signals;
    /// see `ThresholdConfig::default`). The fleet analyses use absolute
    /// magnitudes instead.
    pub waits_per_request: bool,
    /// The tenant's latency goal, if any (§2.3).
    pub latency_goal: Option<LatencyGoal>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            window_cap: 60,
            smoothing_window: 3,
            trend_window: 10,
            corr_window: 15,
            trend_alpha: 0.70,
            trend_min_relative_change: 0.10,
            thresholds: ThresholdConfig::default(),
            waits_per_request: true,
            latency_goal: None,
        }
    }
}

/// Reusable buffers threaded through the per-interval signal computation so
/// the steady-state hot path allocates nothing.
#[derive(Debug, Default)]
struct SignalScratch {
    median: Vec<f64>,
    spearman: SpearmanScratch,
    trend: TrendScratch,
}

/// Transforms raw interval telemetry into [`SignalSet`]s.
#[derive(Debug)]
pub struct TelemetryManager {
    cfg: TelemetryConfig,
    window: SampleWindow,
    estimator: TheilSen,
    scratch: SignalScratch,
}

impl TelemetryManager {
    /// Creates a manager.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            window: SampleWindow::new(cfg.window_cap),
            estimator: TheilSen::new().with_alpha(cfg.trend_alpha),
            scratch: SignalScratch::default(),
            cfg,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Replaces the threshold configuration (service-wide re-tuning, §4.1).
    pub fn set_thresholds(&mut self, thresholds: ThresholdConfig) {
        self.cfg.thresholds = thresholds.validated();
    }

    /// Ingests one interval's sample and returns the refreshed signal set.
    pub fn observe(&mut self, sample: TelemetrySample) -> SignalSet {
        self.window.push(sample);
        self.signals()
    }

    /// Computes the signal set from the current window.
    ///
    /// Takes `&mut self` only for the internal scratch buffers: the window
    /// is not modified and repeated calls return identical results.
    ///
    /// # Panics
    /// Panics if no sample has been observed yet.
    pub fn signals(&mut self) -> SignalSet {
        let Self {
            cfg,
            window,
            estimator,
            scratch,
        } = self;
        let latest = window.latest().expect("signals() before any observe()");
        let smoothing = cfg.smoothing_window;
        let latency_series = window.latency_series(cfg.corr_window);

        let resources: [ResourceSignals; RESOURCE_KINDS.len()] = RESOURCE_KINDS
            .map(|kind| resource_signals(cfg, window, estimator, scratch, kind, latency_series));

        let observed_ms =
            median_in(window.latency_series(smoothing), &mut scratch.median).or(latest.latency_ms);
        let goal_ms = cfg.latency_goal.map(|g| g.target_ms());
        let latency = LatencySignals {
            observed_ms,
            goal_ms,
            verdict: categorize_latency(observed_ms, goal_ms),
            trend: {
                let series = window.latency_series(cfg.trend_window);
                let trend = estimator.trend_indexed_in(series, &mut scratch.trend);
                material_trend(cfg, trend, series, &mut scratch.median)
            },
        };

        SignalSet {
            interval: latest.interval,
            resources,
            latency,
            lock_wait_pct: median_wait_pct(window, scratch, WaitClass::Lock, smoothing),
            latch_wait_pct: median_wait_pct(window, scratch, WaitClass::Latch, smoothing),
            other_wait_pct: median_wait_pct(window, scratch, WaitClass::Other, smoothing),
            total_wait_ms: latest.total_wait_ms(),
            mem_used_mb: latest.mem_used_mb,
            mem_capacity_mb: latest.mem_capacity_mb,
            disk_reads_per_sec: latest.disk_reads_per_sec,
            completed: latest.completed,
            rejected: latest.rejected,
        }
    }
}

fn median_wait_pct(
    window: &SampleWindow,
    scratch: &mut SignalScratch,
    class: WaitClass,
    n: usize,
) -> f64 {
    median_in(window.wait_pct_series(class, n), &mut scratch.median).unwrap_or(0.0)
}

/// Applies the materiality guard to an accepted trend.
fn material_trend(
    cfg: &TelemetryConfig,
    trend: dasr_stats::Trend,
    series: &[f64],
    median_scratch: &mut Vec<f64>,
) -> dasr_stats::Trend {
    if let dasr_stats::Trend::Significant { slope, .. } = trend {
        let level = median_in(series, median_scratch).unwrap_or(0.0).abs();
        let projected = slope.abs() * (series.len().saturating_sub(1)) as f64;
        if projected < cfg.trend_min_relative_change * level {
            return dasr_stats::Trend::None;
        }
    }
    trend
}

/// The wait-magnitude series of `class` per the configured normalization —
/// a zero-copy window view either way.
fn wait_series<'w>(
    cfg: &TelemetryConfig,
    window: &'w SampleWindow,
    class: WaitClass,
    n: usize,
) -> &'w [f64] {
    if cfg.waits_per_request {
        window.wait_per_request_series(class, n)
    } else {
        window.wait_series(class, n)
    }
}

fn resource_signals(
    cfg: &TelemetryConfig,
    window: &SampleWindow,
    estimator: &TheilSen,
    scratch: &mut SignalScratch,
    kind: ResourceKind,
    latency_series: &[f64],
) -> ResourceSignals {
    let class = wait_class_for(kind);
    let smoothing = cfg.smoothing_window;
    let thresholds = cfg.thresholds.waits_for(kind);

    let util_pct =
        median_in(window.util_series(kind, smoothing), &mut scratch.median).unwrap_or(0.0);
    let wait_ms = median_in(
        wait_series(cfg, window, class, smoothing),
        &mut scratch.median,
    )
    .unwrap_or(0.0);
    let wait_pct = median_wait_pct(window, scratch, class, smoothing);

    let util_series_t = window.util_series(kind, cfg.trend_window);
    let util_trend = material_trend(
        cfg,
        estimator.trend_indexed_in(util_series_t, &mut scratch.trend),
        util_series_t,
        &mut scratch.median,
    );
    let wait_series_t = wait_series(cfg, window, class, cfg.trend_window);
    let wait_trend = material_trend(
        cfg,
        estimator.trend_indexed_in(wait_series_t, &mut scratch.trend),
        wait_series_t,
        &mut scratch.median,
    );

    let n = cfg.corr_window;
    let corr_latency_wait = spearman_in(
        latency_series,
        wait_series(cfg, window, class, n),
        &mut scratch.spearman,
    );
    let corr_latency_util = spearman_in(
        latency_series,
        window.util_series(kind, n),
        &mut scratch.spearman,
    );

    ResourceSignals {
        kind,
        util_pct,
        util_level: categorize_util(&cfg.thresholds, util_pct),
        wait_ms,
        wait_level: categorize_wait_ms(thresholds, wait_ms),
        wait_pct,
        wait_pct_level: categorize_wait_pct(thresholds, wait_pct),
        util_trend,
        wait_trend,
        corr_latency_wait,
        corr_latency_util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::{LatencyVerdict, UtilLevel, WaitTimeLevel};

    fn sample(
        interval: u64,
        cpu_util: f64,
        cpu_wait_ms: f64,
        lock_wait_ms: f64,
        latency: Option<f64>,
    ) -> TelemetrySample {
        let mut util_pct = [0.0; 4];
        util_pct[ResourceKind::Cpu.index()] = cpu_util;
        util_pct[ResourceKind::Memory.index()] = 85.0;
        let mut wait_ms = [0.0; 7];
        wait_ms[WaitClass::Cpu.index()] = cpu_wait_ms;
        wait_ms[WaitClass::Lock.index()] = lock_wait_ms;
        TelemetrySample {
            interval,
            util_pct,
            wait_ms,
            latency_ms: latency,
            avg_latency_ms: latency,
            completed: 100,
            arrivals: 100,
            rejected: 0,
            mem_used_mb: 500.0,
            mem_capacity_mb: 1_000.0,
            disk_reads_per_sec: 10.0,
        }
    }

    fn manager(goal: Option<LatencyGoal>) -> TelemetryManager {
        TelemetryManager::new(TelemetryConfig {
            latency_goal: goal,
            ..TelemetryConfig::default()
        })
    }

    #[test]
    fn categorizes_high_pressure() {
        let mut m = manager(Some(LatencyGoal::P95(100.0)));
        let mut set = m.observe(sample(0, 95.0, 200_000.0, 0.0, Some(250.0)));
        for i in 1..5 {
            set = m.observe(sample(i, 95.0, 200_000.0, 0.0, Some(250.0)));
        }
        let cpu = set.resource(ResourceKind::Cpu);
        assert_eq!(cpu.util_level, UtilLevel::High);
        assert_eq!(cpu.wait_level, WaitTimeLevel::High);
        assert_eq!(set.latency.verdict, LatencyVerdict::Bad);
        assert!(set.lock_wait_pct < 1.0);
    }

    #[test]
    fn detects_increasing_trend() {
        let mut m = manager(None);
        let mut set = m.observe(sample(0, 10.0, 0.0, 0.0, None));
        for i in 1..12 {
            set = m.observe(sample(i, 10.0 + 6.0 * i as f64, 0.0, 0.0, None));
        }
        assert!(set.resource(ResourceKind::Cpu).util_trend.is_increasing());
    }

    #[test]
    fn noisy_series_has_no_trend() {
        let mut m = manager(None);
        let mut set = m.observe(sample(0, 50.0, 0.0, 0.0, None));
        for i in 1..12 {
            let u = if i % 2 == 0 { 20.0 } else { 80.0 };
            set = m.observe(sample(i, u, 0.0, 0.0, None));
        }
        assert!(set.resource(ResourceKind::Cpu).util_trend.is_none());
    }

    #[test]
    fn lock_dominated_waits_flagged() {
        let mut m = manager(None);
        let mut set = m.observe(sample(0, 20.0, 10.0, 990.0, Some(50.0)));
        for i in 1..4 {
            set = m.observe(sample(i, 20.0, 10.0, 990.0, Some(50.0)));
        }
        assert!(set.lock_wait_pct > 90.0);
        assert!(set.lock_bottleneck(90.0));
    }

    #[test]
    fn correlation_between_latency_and_waits() {
        let mut m = manager(None);
        let mut set = m.observe(sample(0, 10.0, 0.0, 0.0, Some(1.0)));
        for i in 1..15 {
            // Latency rises monotonically with CPU wait.
            let w = 1_000.0 * i as f64;
            set = m.observe(sample(i, 30.0, w, 0.0, Some(10.0 + i as f64 * 5.0)));
        }
        let cpu = set.resource(ResourceKind::Cpu);
        assert!(
            cpu.corr_latency_wait.unwrap() > 0.9,
            "rho {:?}",
            cpu.corr_latency_wait
        );
    }

    #[test]
    fn no_goal_means_latency_good() {
        let mut m = manager(None);
        let set = m.observe(sample(0, 10.0, 0.0, 0.0, Some(1e6)));
        assert_eq!(set.latency.verdict, LatencyVerdict::Good);
        assert_eq!(set.latency.goal_ms, None);
    }

    #[test]
    fn smoothing_uses_median_not_latest() {
        let mut m = manager(None);
        m.observe(sample(0, 10.0, 0.0, 0.0, None));
        m.observe(sample(1, 12.0, 0.0, 0.0, None));
        // One outlier spike must not flip the level to HIGH.
        let set = m.observe(sample(2, 100.0, 0.0, 0.0, None));
        assert_eq!(set.resource(ResourceKind::Cpu).util_pct, 12.0);
        assert_eq!(set.resource(ResourceKind::Cpu).util_level, UtilLevel::Low);
    }

    #[test]
    #[should_panic(expected = "before any observe")]
    fn signals_before_observe_panics() {
        let mut m = manager(None);
        let _ = m.signals();
    }
}
