//! The signal set: everything the demand estimator consumes.

use crate::categorize::{
    LatencyVerdict, ResourceCategories, UtilLevel, WaitPctLevel, WaitTimeLevel,
};
use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_engine::WaitClass;
use dasr_stats::Trend;

/// The wait class carrying a resource dimension's waits.
pub fn wait_class_for(kind: ResourceKind) -> WaitClass {
    match kind {
        ResourceKind::Cpu => WaitClass::Cpu,
        ResourceKind::Memory => WaitClass::Memory,
        ResourceKind::DiskIo => WaitClass::DiskIo,
        ResourceKind::LogIo => WaitClass::LogIo,
    }
}

/// Robust signals for one resource dimension (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSignals {
    /// The resource dimension.
    pub kind: ResourceKind,
    /// Median utilization % over the smoothing window.
    pub util_pct: f64,
    /// Utilization category.
    pub util_level: UtilLevel,
    /// Median wait ms per interval over the smoothing window.
    pub wait_ms: f64,
    /// Wait-magnitude category.
    pub wait_level: WaitTimeLevel,
    /// Median share of total waits, %.
    pub wait_pct: f64,
    /// Wait-percentage category.
    pub wait_pct_level: WaitPctLevel,
    /// Theil–Sen trend of utilization over the trend window.
    pub util_trend: Trend,
    /// Theil–Sen trend of wait ms over the trend window.
    pub wait_trend: Trend,
    /// Spearman ρ between latency and this resource's waits (None when not
    /// computable).
    pub corr_latency_wait: Option<f64>,
    /// Spearman ρ between latency and this resource's utilization.
    pub corr_latency_util: Option<f64>,
}

impl ResourceSignals {
    /// The categorical snapshot of this dimension (§4.1) — what the rule
    /// predicates match on.
    pub fn categories(&self) -> ResourceCategories {
        ResourceCategories {
            util: self.util_level,
            wait: self.wait_level,
            wait_pct: self.wait_pct_level,
        }
    }

    /// True when either the utilization or the wait series shows a
    /// significant *increasing* trend (§4.2's "SIGNIFICANT increasing trend
    /// over time in utilization and/or wait").
    pub fn increasing_pressure_trend(&self) -> bool {
        self.util_trend.is_increasing() || self.wait_trend.is_increasing()
    }

    /// True when neither series shows an increasing trend (used by the
    /// low-demand rules).
    pub fn no_increasing_trend(&self) -> bool {
        !self.increasing_pressure_trend()
    }

    /// True when latency correlates strongly (ρ ≥ `threshold`) with this
    /// resource's waits or utilization.
    pub fn latency_correlated(&self, threshold: f64) -> bool {
        self.corr_latency_wait.is_some_and(|r| r >= threshold)
            || self.corr_latency_util.is_some_and(|r| r >= threshold)
    }
}

/// Latency signals (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySignals {
    /// Latest aggregated latency (per the goal's statistic), ms.
    pub observed_ms: Option<f64>,
    /// The goal, ms (None when the tenant set no goal).
    pub goal_ms: Option<f64>,
    /// GOOD/BAD verdict.
    pub verdict: LatencyVerdict,
    /// Theil–Sen trend of the latency series.
    pub trend: Trend,
}

impl LatencySignals {
    /// True when the goal is violated or latency is degrading significantly
    /// (§6: "if the latency is BAD, or there is a SIGNIFICANT increasing
    /// trend of latency with time").
    pub fn needs_attention(&self) -> bool {
        self.verdict == LatencyVerdict::Bad || self.trend.is_increasing()
    }
}

/// The complete signal set for one decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSet {
    /// Billing interval the signals describe.
    pub interval: u64,
    /// Per-resource signals (order of `RESOURCE_KINDS`).
    pub resources: [ResourceSignals; RESOURCE_KINDS.len()],
    /// Latency signals.
    pub latency: LatencySignals,
    /// Share of total waits attributable to locks, %.
    pub lock_wait_pct: f64,
    /// Share of total waits attributable to latches, %.
    pub latch_wait_pct: f64,
    /// Share of total waits in the Other class, %.
    pub other_wait_pct: f64,
    /// Total wait ms this interval.
    pub total_wait_ms: f64,
    /// Buffer-pool usage, MB.
    pub mem_used_mb: f64,
    /// Buffer-pool capacity, MB.
    pub mem_capacity_mb: f64,
    /// Disk reads/s (ballooning feedback).
    pub disk_reads_per_sec: f64,
    /// Requests completed in the interval.
    pub completed: u64,
    /// Requests rejected by admission control in the interval.
    pub rejected: u64,
}

impl SignalSet {
    /// Signals for one resource dimension.
    pub fn resource(&self, kind: ResourceKind) -> &ResourceSignals {
        &self.resources[kind.index()]
    }

    /// True when waits are dominated (> `threshold_pct`) by application
    /// locks — the Figure 13 situation where extra resources cannot help.
    pub fn lock_bottleneck(&self, threshold_pct: f64) -> bool {
        self.lock_wait_pct >= threshold_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_stats::TrendDirection;

    fn resource(kind: ResourceKind) -> ResourceSignals {
        ResourceSignals {
            kind,
            util_pct: 50.0,
            util_level: UtilLevel::Medium,
            wait_ms: 10.0,
            wait_level: WaitTimeLevel::Low,
            wait_pct: 10.0,
            wait_pct_level: WaitPctLevel::NotSignificant,
            util_trend: Trend::None,
            wait_trend: Trend::None,
            corr_latency_wait: None,
            corr_latency_util: None,
        }
    }

    #[test]
    fn wait_class_mapping_is_total() {
        for kind in RESOURCE_KINDS {
            let _ = wait_class_for(kind);
        }
        assert_eq!(wait_class_for(ResourceKind::Cpu), WaitClass::Cpu);
        assert_eq!(wait_class_for(ResourceKind::DiskIo), WaitClass::DiskIo);
    }

    #[test]
    fn pressure_trend_detection() {
        let mut r = resource(ResourceKind::Cpu);
        assert!(!r.increasing_pressure_trend());
        r.wait_trend = Trend::Significant {
            direction: TrendDirection::Increasing,
            slope: 1.0,
            agreement: 0.9,
        };
        assert!(r.increasing_pressure_trend());
        assert!(!r.no_increasing_trend());
    }

    #[test]
    fn correlation_check() {
        let mut r = resource(ResourceKind::DiskIo);
        assert!(!r.latency_correlated(0.6));
        r.corr_latency_wait = Some(0.7);
        assert!(r.latency_correlated(0.6));
        r.corr_latency_wait = Some(0.5);
        r.corr_latency_util = Some(0.9);
        assert!(r.latency_correlated(0.6));
    }

    #[test]
    fn latency_needs_attention() {
        let mut l = LatencySignals {
            observed_ms: Some(50.0),
            goal_ms: Some(100.0),
            verdict: LatencyVerdict::Good,
            trend: Trend::None,
        };
        assert!(!l.needs_attention());
        l.verdict = LatencyVerdict::Bad;
        assert!(l.needs_attention());
        l.verdict = LatencyVerdict::Good;
        l.trend = Trend::Significant {
            direction: TrendDirection::Increasing,
            slope: 5.0,
            agreement: 0.8,
        };
        assert!(l.needs_attention());
    }

    #[test]
    fn lock_bottleneck_threshold() {
        let set = SignalSet {
            interval: 0,
            resources: [
                resource(ResourceKind::Cpu),
                resource(ResourceKind::Memory),
                resource(ResourceKind::DiskIo),
                resource(ResourceKind::LogIo),
            ],
            latency: LatencySignals {
                observed_ms: None,
                goal_ms: None,
                verdict: LatencyVerdict::Good,
                trend: Trend::None,
            },
            lock_wait_pct: 92.0,
            latch_wait_pct: 0.0,
            other_wait_pct: 2.0,
            total_wait_ms: 1_000.0,
            mem_used_mb: 100.0,
            mem_capacity_mb: 200.0,
            disk_reads_per_sec: 1.0,
            completed: 10,
            rejected: 0,
        };
        assert!(set.lock_bottleneck(90.0));
        assert!(!set.lock_bottleneck(95.0));
        assert_eq!(
            set.resource(ResourceKind::Memory).kind,
            ResourceKind::Memory
        );
    }
}
