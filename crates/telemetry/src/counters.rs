//! Raw per-interval telemetry rows and latency goals.

use dasr_containers::{ResourceKind, RESOURCE_KINDS};
use dasr_engine::engine::IntervalStats;
use dasr_engine::waits::WAIT_CLASSES;
use dasr_engine::WaitClass;
use dasr_stats::{percentile, percentile_interpolated};

/// The tenant's latency goal (§2.3): a target on the average or on the 95th
/// percentile latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyGoal {
    /// Goal on the mean latency, in milliseconds.
    Average(f64),
    /// Goal on the 95th-percentile latency, in milliseconds.
    P95(f64),
}

impl LatencyGoal {
    /// The goal value in milliseconds.
    pub fn target_ms(&self) -> f64 {
        match self {
            LatencyGoal::Average(ms) | LatencyGoal::P95(ms) => *ms,
        }
    }

    /// Aggregates a latency sample according to the goal's statistic.
    /// Returns `None` for an empty sample.
    pub fn aggregate(&self, latencies_ms: &[f64]) -> Option<f64> {
        match self {
            LatencyGoal::Average(_) => {
                if latencies_ms.is_empty() {
                    None
                } else {
                    Some(latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64)
                }
            }
            LatencyGoal::P95(_) => percentile(latencies_ms, 95.0),
        }
    }
}

/// One interval's raw telemetry, engine-agnostic: the telemetry manager and
/// the fleet analyses both consume this shape. It is also the unit a
/// [`TelemetrySource`](crate::TelemetrySource) yields per interval — and
/// therefore the unit run recordings capture and replay — so its fields
/// must stay a *complete* description of what the decision loop reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Interval index (billing interval number).
    pub interval: u64,
    /// Utilization % per resource dimension (order of `RESOURCE_KINDS`).
    pub util_pct: [f64; RESOURCE_KINDS.len()],
    /// Wait milliseconds per wait class accumulated this interval (order of
    /// `WAIT_CLASSES`).
    pub wait_ms: [f64; WAIT_CLASSES.len()],
    /// Aggregated latency (per the tenant's goal statistic), ms; `None`
    /// when nothing completed.
    pub latency_ms: Option<f64>,
    /// Average latency, ms (kept alongside for diagnostics).
    pub avg_latency_ms: Option<f64>,
    /// Requests completed.
    pub completed: u64,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Buffer-pool usage in MB.
    pub mem_used_mb: f64,
    /// Buffer-pool capacity in MB.
    pub mem_capacity_mb: f64,
    /// Disk reads per second (ballooning feedback, §4.3).
    pub disk_reads_per_sec: f64,
}

impl TelemetrySample {
    /// Builds a sample from the engine's interval stats, aggregating
    /// latencies with the statistic of `goal`.
    pub fn from_interval(interval: u64, stats: &IntervalStats, goal: LatencyGoal) -> Self {
        let mut util_pct = [0.0; RESOURCE_KINDS.len()];
        util_pct[ResourceKind::Cpu.index()] = stats.cpu_util_pct;
        util_pct[ResourceKind::Memory.index()] = stats.mem_util_pct;
        util_pct[ResourceKind::DiskIo.index()] = stats.disk_util_pct;
        util_pct[ResourceKind::LogIo.index()] = stats.log_util_pct;

        let mut wait_ms = [0.0; WAIT_CLASSES.len()];
        for class in WAIT_CLASSES {
            wait_ms[class.index()] = stats.waits[class] as f64 / 1_000.0;
        }

        let avg_latency_ms = if stats.latencies_ms.is_empty() {
            None
        } else {
            Some(stats.latencies_ms.iter().sum::<f64>() / stats.latencies_ms.len() as f64)
        };

        Self {
            interval,
            util_pct,
            wait_ms,
            latency_ms: goal.aggregate(&stats.latencies_ms),
            avg_latency_ms,
            completed: stats.completed,
            arrivals: stats.arrivals,
            rejected: stats.rejected,
            mem_used_mb: stats.mem_used_mb,
            mem_capacity_mb: stats.mem_capacity_mb,
            disk_reads_per_sec: stats.disk_reads_per_sec(),
        }
    }

    /// Utilization of one resource.
    pub fn util(&self, kind: ResourceKind) -> f64 {
        self.util_pct[kind.index()]
    }

    /// Wait ms of one class.
    pub fn wait(&self, class: WaitClass) -> f64 {
        self.wait_ms[class.index()]
    }

    /// Total wait ms across classes, including `Other`.
    pub fn total_wait_ms(&self) -> f64 {
        self.wait_ms.iter().sum()
    }

    /// Total *resource* wait ms: everything except `Other`, which holds
    /// client think time / coordination stalls the engine is not waiting on
    /// (a mid-transaction client round trip leaves the session idle, not
    /// waiting — it never appears in `sys.dm_os_wait_stats`).
    pub fn resource_wait_ms(&self) -> f64 {
        self.total_wait_ms() - self.wait(WaitClass::Other)
    }

    /// Wait of `class` as a percentage of the *resource* waits (0 when no
    /// waits). The paper's percentage-wait signal (§3.1) and Figure 13(c)
    /// both range over resource wait categories.
    pub fn wait_pct(&self, class: WaitClass) -> f64 {
        if class == WaitClass::Other {
            return 0.0;
        }
        let total = self.resource_wait_ms();
        if total <= 0.0 {
            0.0
        } else {
            self.wait(class) / total * 100.0
        }
    }
}

/// Interpolated p95 helper used by reports.
pub fn p95(latencies_ms: &[f64]) -> Option<f64> {
    percentile_interpolated(latencies_ms, 95.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_engine::{SimTime, WaitStats};

    fn stats_with(latencies: Vec<f64>) -> IntervalStats {
        let mut waits = WaitStats::new();
        waits.add(WaitClass::Cpu, 2_000_000); // 2000 ms
        waits.add(WaitClass::Lock, 6_000_000); // 6000 ms
        IntervalStats {
            start: SimTime::ZERO,
            end: SimTime::from_mins(1),
            cpu_util_pct: 55.0,
            mem_util_pct: 90.0,
            disk_util_pct: 10.0,
            log_util_pct: 5.0,
            mem_used_mb: 800.0,
            mem_capacity_mb: 1_000.0,
            waits,
            completed: latencies.len() as u64,
            latencies_ms: latencies,
            arrivals: 10,
            rejected: 1,
            disk_reads: 120,
            disk_writes: 3,
            outstanding: 2,
        }
    }

    #[test]
    fn sample_from_interval() {
        let s = TelemetrySample::from_interval(
            7,
            &stats_with(vec![10.0, 20.0, 30.0]),
            LatencyGoal::Average(100.0),
        );
        assert_eq!(s.interval, 7);
        assert_eq!(s.util(ResourceKind::Cpu), 55.0);
        assert_eq!(s.wait(WaitClass::Cpu), 2_000.0);
        assert_eq!(s.latency_ms, Some(20.0));
        assert_eq!(s.avg_latency_ms, Some(20.0));
        assert_eq!(s.disk_reads_per_sec, 2.0);
    }

    #[test]
    fn p95_goal_aggregates_percentile() {
        let latencies: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = TelemetrySample::from_interval(0, &stats_with(latencies), LatencyGoal::P95(50.0));
        assert_eq!(s.latency_ms, Some(95.0));
    }

    #[test]
    fn empty_latencies_are_none() {
        let s = TelemetrySample::from_interval(0, &stats_with(vec![]), LatencyGoal::P95(50.0));
        assert_eq!(s.latency_ms, None);
        assert_eq!(s.avg_latency_ms, None);
    }

    #[test]
    fn wait_percentages() {
        let s =
            TelemetrySample::from_interval(0, &stats_with(vec![1.0]), LatencyGoal::Average(1.0));
        assert_eq!(s.total_wait_ms(), 8_000.0);
        assert_eq!(s.wait_pct(WaitClass::Cpu), 25.0);
        assert_eq!(s.wait_pct(WaitClass::Lock), 75.0);
        assert_eq!(s.wait_pct(WaitClass::DiskIo), 0.0);
    }

    #[test]
    fn goal_accessors() {
        assert_eq!(LatencyGoal::Average(120.0).target_ms(), 120.0);
        assert_eq!(LatencyGoal::P95(485.0).target_ms(), 485.0);
        assert_eq!(LatencyGoal::Average(1.0).aggregate(&[]), None);
        assert_eq!(LatencyGoal::Average(1.0).aggregate(&[2.0, 4.0]), Some(3.0));
    }
}
