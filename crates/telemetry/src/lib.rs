//! # dasr-telemetry — the Telemetry Manager (paper §3)
//!
//! Mature database engines monitor hundreds of counters; the Telemetry
//! Manager transforms that raw *production telemetry* into a small set of
//! statistically-robust **signals** usable for demand estimation:
//!
//! 1. **Raw signals** (§3.1) — latency (average or 95th percentile, per the
//!    tenant's goal), per-resource utilization (robust medians over
//!    windows), and per-class wait statistics, both *magnitude* (wait ms)
//!    and *percentage* (share of total waits);
//! 2. **Derived signals** (§3.2) — Theil–Sen trends accepted only with
//!    ≥70% slope-sign agreement, and Spearman rank correlations between
//!    latency and each resource's utilization/waits;
//! 3. **Categorization** (§4.1) — thresholds turn continuous signals into
//!    categories with semantics (`LOW`/`MEDIUM`/`HIGH` utilization and
//!    waits, `SIGNIFICANT` wait percentages, `GOOD`/`BAD` latency). The
//!    wait thresholds are *derived from service-wide telemetry* — see
//!    [`thresholds::derive_wait_thresholds`] and the `dasr-fleet` crate.
//!
//! The output is a [`SignalSet`], the sole input of the
//! resource demand estimator in `dasr-core`.
//!
//! The [`source`] module defines *where samples come from and where resize
//! commands go*: the [`TelemetrySource`]/[`ResizeActuator`] seam that the
//! closed loop in `dasr-core` is generic over, with the discrete-event
//! simulator as just one backend.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::float_cmp))]

pub mod categorize;
pub mod counters;
pub mod manager;
pub mod signals;
pub mod source;
pub mod thresholds;
pub mod window;

pub use categorize::{LatencyVerdict, ResourceCategories, UtilLevel, WaitPctLevel, WaitTimeLevel};
pub use counters::{LatencyGoal, TelemetrySample};
pub use manager::{TelemetryConfig, TelemetryManager};
pub use signals::{LatencySignals, ResourceSignals, SignalSet};
pub use source::{
    CounterfactualActuator, NullActuator, ProbeStatus, ResizeActuator, SourcePair, TelemetrySource,
};
pub use thresholds::{ThresholdConfig, WaitThresholds};
