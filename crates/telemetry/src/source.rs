//! The source/actuator seam: where per-interval telemetry comes *from* and
//! where resize commands *go*.
//!
//! The paper's autoscaler (§4–§6) is defined entirely over telemetry
//! signals — it never mentions a simulator. This module makes that
//! boundary explicit as two small traits so the closed loop in `dasr-core`
//! can be driven by anything that produces [`TelemetrySample`]s:
//!
//! - [`TelemetrySource`] — yields one sample per billing interval plus the
//!   balloon-probe state ([`ProbeStatus`]) the §4.3 controller needs;
//! - [`ResizeActuator`] — receives the loop's outputs: container resizes
//!   and balloon start/abort/commit commands.
//!
//! The discrete-event simulator is just one backend (`SimulatorSource` in
//! `dasr-core`, which implements both traits over `dasr_engine::Engine`).
//! A recorded run replayed from JSONL is another (`ReplaySource`), paired
//! with the [`NullActuator`] (pure replay) or the [`CounterfactualActuator`]
//! (tally what a different policy *would* have done). [`SourcePair`] glues
//! any source to any actuator so the two halves stay independently
//! pluggable while the loop takes a single backend value.
//!
//! # Determinism
//!
//! A source must be a pure function of its construction inputs: calling
//! [`TelemetrySource::observe_interval`] for intervals `0..intervals()` in
//! order, interleaved with any actuator calls, must always produce the
//! same sample sequence. That is what lets the closed loop promise
//! bit-identical reports for a given `(source, policy)` pair, and what
//! makes record→replay exact.

use crate::counters::{LatencyGoal, TelemetrySample};
use dasr_containers::ResourceVector;

/// Balloon-probe state on the telemetry side of the seam (§4.3).
///
/// Reported by a [`TelemetrySource`] after each interval; consumed by the
/// ballooning controller in `dasr-core` (which re-exports this type as
/// `BalloonProbe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStatus {
    /// No balloon in progress.
    #[default]
    Inactive,
    /// Deflating; `reached_target` once capacity hit the target.
    Active {
        /// Whether the target capacity has been reached.
        reached_target: bool,
    },
}

/// A producer of per-interval telemetry: the input half of the closed
/// loop's seam.
///
/// Implementations advance whatever they wrap — a discrete-event
/// simulator, a recorded run, eventually a live database's stats — by one
/// billing interval at a time and surface the interval's
/// [`TelemetrySample`].
pub trait TelemetrySource {
    /// Number of billing intervals this source will produce.
    fn intervals(&self) -> usize;

    /// The workload's name, for reports.
    fn workload_name(&self) -> &str;

    /// The demand trace's name, for reports.
    fn trace_name(&self) -> &str;

    /// Advances through billing interval `interval` (0-based, called in
    /// order) and returns its telemetry sample. `goal` selects the latency
    /// aggregation statistic (§2.3); sources replaying pre-aggregated
    /// samples may ignore it.
    fn observe_interval(&mut self, interval: u64, goal: LatencyGoal) -> TelemetrySample;

    /// Per-request latencies of the interval just observed, for whole-run
    /// percentile pooling. Sources that do not retain raw latencies (e.g.
    /// replay from recorded aggregates) return an empty slice.
    fn interval_latencies_ms(&self) -> &[f64];

    /// Balloon-probe state after the interval just observed (§4.3),
    /// *before* any actuator command for this interval is applied.
    fn probe(&self) -> ProbeStatus;
}

/// A consumer of scaling decisions: the output half of the seam.
///
/// The closed loop calls these at most once per interval, after the policy
/// decided; a simulator applies them to its engine, a replay backend
/// ignores or tallies them.
pub trait ResizeActuator {
    /// Applies a new container's resource allocation.
    fn apply_resources(&mut self, resources: ResourceVector);

    /// Starts deflating the buffer pool toward `target_mb` (§4.3).
    fn start_balloon(&mut self, target_mb: f64);

    /// Aborts the active balloon probe and restores the pool.
    fn abort_balloon(&mut self);

    /// Commits the active balloon probe (memory demand confirmed low).
    fn commit_balloon(&mut self);
}

/// An actuator that discards every command — pure replay: the recorded
/// telemetry already reflects what the *original* policy did, so a
/// replayed policy's commands must not (and cannot) feed back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullActuator;

impl ResizeActuator for NullActuator {
    // dasr-lint: no-alloc
    fn apply_resources(&mut self, _resources: ResourceVector) {}
    // dasr-lint: no-alloc
    fn start_balloon(&mut self, _target_mb: f64) {}
    // dasr-lint: no-alloc
    fn abort_balloon(&mut self) {}
    // dasr-lint: no-alloc
    fn commit_balloon(&mut self) {}
}

/// An actuator that tallies what a policy *would* have done — the
/// counterfactual ledger for offline policy A/B over a recorded run
/// (replayed telemetry stays frozen; this records the divergent actions).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CounterfactualActuator {
    /// Resize commands received.
    pub resizes: u64,
    /// Balloon probes the policy would have started.
    pub balloon_starts: u64,
    /// Balloon probes the policy would have aborted.
    pub balloon_aborts: u64,
    /// Balloon probes the policy would have committed.
    pub balloon_commits: u64,
    /// The last allocation the policy asked for, if any.
    pub last_applied: Option<ResourceVector>,
}

impl ResizeActuator for CounterfactualActuator {
    // dasr-lint: no-alloc
    fn apply_resources(&mut self, resources: ResourceVector) {
        self.resizes += 1;
        self.last_applied = Some(resources);
    }

    // dasr-lint: no-alloc
    fn start_balloon(&mut self, _target_mb: f64) {
        self.balloon_starts += 1;
    }

    // dasr-lint: no-alloc
    fn abort_balloon(&mut self) {
        self.balloon_aborts += 1;
    }

    // dasr-lint: no-alloc
    fn commit_balloon(&mut self) {
        self.balloon_commits += 1;
    }
}

/// Glues an independent source and actuator into one loop backend.
///
/// The closed loop is generic over a single value implementing both
/// traits. A simulator implements both on one struct (the engine is
/// simultaneously where telemetry comes from and where resizes go); a
/// replay pairs a [`TelemetrySource`] with whatever [`ResizeActuator`]
/// fits the experiment — that pairing is this struct.
#[derive(Debug, Clone, Default)]
pub struct SourcePair<S, A> {
    /// The telemetry-producing half.
    pub source: S,
    /// The command-consuming half.
    pub actuator: A,
}

impl<S, A> SourcePair<S, A> {
    /// Pairs `source` with `actuator`.
    pub fn new(source: S, actuator: A) -> Self {
        Self { source, actuator }
    }
}

impl<S: TelemetrySource, A> TelemetrySource for SourcePair<S, A> {
    fn intervals(&self) -> usize {
        self.source.intervals()
    }

    fn workload_name(&self) -> &str {
        self.source.workload_name()
    }

    fn trace_name(&self) -> &str {
        self.source.trace_name()
    }

    fn observe_interval(&mut self, interval: u64, goal: LatencyGoal) -> TelemetrySample {
        self.source.observe_interval(interval, goal)
    }

    // dasr-lint: no-alloc
    fn interval_latencies_ms(&self) -> &[f64] {
        self.source.interval_latencies_ms()
    }

    // dasr-lint: no-alloc
    fn probe(&self) -> ProbeStatus {
        self.source.probe()
    }
}

impl<S, A: ResizeActuator> ResizeActuator for SourcePair<S, A> {
    // dasr-lint: no-alloc
    fn apply_resources(&mut self, resources: ResourceVector) {
        self.actuator.apply_resources(resources);
    }

    // dasr-lint: no-alloc
    fn start_balloon(&mut self, target_mb: f64) {
        self.actuator.start_balloon(target_mb);
    }

    // dasr-lint: no-alloc
    fn abort_balloon(&mut self) {
        self.actuator.abort_balloon();
    }

    // dasr-lint: no-alloc
    fn commit_balloon(&mut self) {
        self.actuator.commit_balloon();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasr_containers::RESOURCE_KINDS;
    use dasr_engine::waits::WAIT_CLASSES;

    fn sample(interval: u64) -> TelemetrySample {
        TelemetrySample {
            interval,
            util_pct: [10.0; RESOURCE_KINDS.len()],
            wait_ms: [0.0; WAIT_CLASSES.len()],
            latency_ms: Some(5.0),
            avg_latency_ms: Some(5.0),
            completed: 100,
            arrivals: 100,
            rejected: 0,
            mem_used_mb: 100.0,
            mem_capacity_mb: 200.0,
            disk_reads_per_sec: 1.0,
        }
    }

    /// A scripted source for trait plumbing tests.
    struct Scripted {
        n: usize,
        latencies: Vec<f64>,
    }

    impl TelemetrySource for Scripted {
        fn intervals(&self) -> usize {
            self.n
        }
        fn workload_name(&self) -> &str {
            "scripted"
        }
        fn trace_name(&self) -> &str {
            "flat"
        }
        fn observe_interval(&mut self, interval: u64, _goal: LatencyGoal) -> TelemetrySample {
            sample(interval)
        }
        fn interval_latencies_ms(&self) -> &[f64] {
            &self.latencies
        }
        fn probe(&self) -> ProbeStatus {
            ProbeStatus::Inactive
        }
    }

    #[test]
    fn null_actuator_ignores_everything() {
        let mut a = NullActuator;
        a.apply_resources(ResourceVector::new(1.0, 2.0, 3.0, 4.0));
        a.start_balloon(100.0);
        a.abort_balloon();
        a.commit_balloon();
        assert_eq!(a, NullActuator);
    }

    #[test]
    fn counterfactual_actuator_tallies_commands() {
        let mut a = CounterfactualActuator::default();
        let rv = ResourceVector::new(2.0, 4096.0, 500.0, 10.0);
        a.apply_resources(rv);
        a.apply_resources(rv);
        a.start_balloon(1024.0);
        a.abort_balloon();
        a.commit_balloon();
        assert_eq!(a.resizes, 2);
        assert_eq!(a.balloon_starts, 1);
        assert_eq!(a.balloon_aborts, 1);
        assert_eq!(a.balloon_commits, 1);
        assert_eq!(a.last_applied, Some(rv));
    }

    #[test]
    fn source_pair_delegates_both_halves() {
        let mut pair = SourcePair::new(
            Scripted {
                n: 3,
                latencies: vec![1.0, 2.0],
            },
            CounterfactualActuator::default(),
        );
        assert_eq!(pair.intervals(), 3);
        assert_eq!(pair.workload_name(), "scripted");
        assert_eq!(pair.trace_name(), "flat");
        let s = pair.observe_interval(1, LatencyGoal::P95(f64::INFINITY));
        assert_eq!(s.interval, 1);
        assert_eq!(pair.interval_latencies_ms(), &[1.0, 2.0]);
        assert_eq!(pair.probe(), ProbeStatus::Inactive);
        pair.apply_resources(ResourceVector::ZERO);
        pair.start_balloon(10.0);
        assert_eq!(pair.actuator.resizes, 1);
        assert_eq!(pair.actuator.balloon_starts, 1);
    }

    #[test]
    fn probe_status_default_is_inactive() {
        assert_eq!(ProbeStatus::default(), ProbeStatus::Inactive);
        assert_ne!(
            ProbeStatus::Active {
                reached_target: false
            },
            ProbeStatus::Active {
                reached_target: true
            }
        );
    }
}
