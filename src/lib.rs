//! # dasr — Demand-driven Auto-Scaling for Relational DaaS
//!
//! Facade crate re-exporting the full workspace — a reproduction of
//! *Automated Demand-driven Resource Scaling in Relational
//! Database-as-a-Service* (SIGMOD 2016). See the individual crates:
//!
//! - [`stats`] — robust statistics (Theil–Sen, Spearman, quantiles, token
//!   bucket);
//! - [`containers`] — the DaaS container catalog and cost model;
//! - [`engine`] — the discrete-event database-server simulator;
//! - [`workloads`] — benchmark workloads (CPUIO, TPC-C-lite, DS2-lite) and
//!   load traces;
//! - [`telemetry`] — raw counters → robust signals → categorized signals,
//!   and the `TelemetrySource`/`ResizeActuator` seam the loop drives;
//! - [`fleet`] — service-wide telemetry synthesis and threshold derivation;
//! - [`core`] — the paper's contribution: demand estimator, budget manager
//!   and the closed-loop auto-scaler (generic over the seam, with
//!   simulator and recorded-run-replay backends), plus all baseline
//!   policies;
//! - [`store`] — the durable run store: an append-only segmented binary
//!   log of run events and telemetry samples with a sparse time index, a
//!   run catalog and a query API; archived runs replay byte-identically
//!   through the `core` replay machinery.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub use dasr_containers as containers;
pub use dasr_core as core;
pub use dasr_engine as engine;
pub use dasr_fleet as fleet;
pub use dasr_stats as stats;
pub use dasr_store as store;
pub use dasr_telemetry as telemetry;
pub use dasr_workloads as workloads;
