//! Latency goals as a cost knob (§2.3, §7.3): the same workload under a
//! tight and a loose p95 goal, and under the coarse-grained sensitivity
//! knob for tenants without a precise goal.
//!
//! ```text
//! cargo run --release --example latency_goals
//! ```

use dasr::core::policy::AutoPolicy;
use dasr::core::runner::ClosedLoop;
use dasr::core::{PerfSensitivity, RunConfig, RunReport, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn run(knobs: TenantKnobs) -> RunReport {
    let workload = CpuIoWorkload::new(CpuIoConfig::default());
    let trace = Trace::paper_with_len(2, 120);
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload.config().hot_pages,
        ..RunConfig::default()
    };
    let mut policy = AutoPolicy::with_knobs(knobs);
    ClosedLoop::run(&cfg, &trace, workload, &mut policy)
}

fn main() {
    println!("CPUIO on trace 2 (one long burst), Auto policy\n");
    println!("{:<42} {:>10} {:>14}", "knobs", "p95 (ms)", "cost/interval");
    for (label, knobs) in [
        (
            "tight goal: p95 <= 150 ms",
            TenantKnobs::none().with_latency_goal(LatencyGoal::P95(150.0)),
        ),
        (
            "loose goal: p95 <= 600 ms",
            TenantKnobs::none().with_latency_goal(LatencyGoal::P95(600.0)),
        ),
        (
            "average-latency goal: avg <= 150 ms",
            TenantKnobs::none().with_latency_goal(LatencyGoal::Average(150.0)),
        ),
        (
            "no goal, HIGH sensitivity",
            TenantKnobs::none().with_sensitivity(PerfSensitivity::High),
        ),
        (
            "no goal, LOW sensitivity",
            TenantKnobs::none().with_sensitivity(PerfSensitivity::Low),
        ),
    ] {
        let report = run(knobs);
        println!(
            "{:<42} {:>10.0} {:>14.1}",
            label,
            report.p95_ms().unwrap_or(f64::NAN),
            report.avg_cost_per_interval()
        );
    }
    println!(
        "\nLooser goals and lower sensitivity let the auto-scaler run smaller containers: \
         latency degrades within the stated tolerance, and the bill shrinks (§7.3)."
    );
}
