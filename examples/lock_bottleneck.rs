//! The Figure 13 scenario: a lock-bound workload where buying resources
//! cannot help. Auto explains the bottleneck and holds; the
//! utilization-only baseline climbs the container ladder for nothing.
//!
//! ```text
//! cargo run --release --example lock_bottleneck
//! ```

use dasr::core::policy::{AutoPolicy, UtilPolicy};
use dasr::core::runner::ClosedLoop;
use dasr::core::{RunConfig, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{TpccConfig, TpccWorkload, Trace};

fn main() {
    // One warehouse: every Payment serializes on a single hot row.
    let workload = TpccWorkload::new(TpccConfig {
        warehouses: 1,
        ..TpccConfig::default()
    });
    let trace = Trace::new("steady-contended", vec![60.0; 90]);
    // A goal the lock convoy makes unattainable.
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(30.0));
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload.config().hot_pages,
        ..RunConfig::default()
    };

    let mut auto = AutoPolicy::with_knobs(knobs);
    let auto_report = ClosedLoop::run(&cfg, &trace, workload.clone(), &mut auto);
    let mut util = UtilPolicy::new();
    let util_report = ClosedLoop::run(&cfg, &trace, workload, &mut util);

    println!("TPC-C with ONE warehouse at 60 req/s — Payment serializes on the warehouse row\n");
    for r in [&auto_report, &util_report] {
        let max_rung = r.intervals.iter().map(|i| i.rung).max().unwrap_or(0);
        println!(
            "{:>5}: p95 {:>7.0} ms | cost/interval {:>6.1} | highest container C{} | resizes {}",
            r.policy,
            r.p95_ms().unwrap_or(f64::NAN),
            r.avg_cost_per_interval(),
            max_rung,
            r.resizes,
        );
    }

    // Show the explanation Auto gives when it refuses to scale.
    let explanation = auto_report
        .intervals
        .iter()
        .flat_map(|i| i.explanations())
        .find(|e| e.contains("locks"));
    println!(
        "\nAuto's explanation (§4): {}",
        explanation.as_deref().unwrap_or("<none>")
    );
    println!(
        "Paper (Figure 13): lock waits dominate; Util buys up to 70% of the server and \
         latency does not improve, Auto stays small and says why."
    );
    assert!(
        auto_report.avg_cost_per_interval() <= util_report.avg_cost_per_interval(),
        "Auto must not outspend Util on a non-resource bottleneck"
    );
}
