//! A month-long budgeting period with the token-bucket budget manager (§5).
//!
//! The tenant sets a hard monthly budget. The budget manager shapes how the
//! surplus over the always-affordable floor may be burst; the hard
//! constraint ΣCᵢ ≤ B holds no matter what the demand does.
//!
//! ```text
//! cargo run --release --example budget_month
//! ```

use dasr::core::policy::AutoPolicy;
use dasr::core::runner::ClosedLoop;
use dasr::core::{BudgetStrategy, RunConfig, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    // One compressed "month": 360 billing intervals with daily-ish bursts.
    let minutes = 360;
    let rps: Vec<f64> = (0..minutes)
        .map(|i| if i % 60 < 12 { 150.0 } else { 8.0 })
        .collect();
    let trace = Trace::new("bursty-month", rps);
    let workload = CpuIoWorkload::new(CpuIoConfig::default());

    // Floor cost: the cheapest container (7 units) every interval. Give 60%
    // of what unconstrained Auto would like to spend.
    let budget = 0.6 * 90.0 * minutes as f64 / 3.0 + 7.0 * minutes as f64;

    for (label, strategy) in [
        (
            "aggressive token bucket (TI = D)",
            BudgetStrategy::Aggressive,
        ),
        (
            "conservative token bucket (TI = 3×Cmax)",
            BudgetStrategy::Conservative { k: 3 },
        ),
    ] {
        let knobs = TenantKnobs::none()
            .with_latency_goal(LatencyGoal::P95(200.0))
            .with_budget(budget);
        let cfg = RunConfig {
            knobs,
            budget_strategy: strategy,
            prewarm_pages: workload.config().hot_pages,
            ..RunConfig::default()
        };
        let mut policy = AutoPolicy::with_knobs(knobs);
        let report = ClosedLoop::run(&cfg, &trace, workload.clone(), &mut policy);

        let constrained = report
            .intervals
            .iter()
            .filter(|i| i.explanations().iter().any(|e| e.contains("budget")))
            .count();
        println!("== {label} ==");
        println!(
            "  budget {budget:.0} | spent {:.0} ({:.0}%) — hard constraint {}",
            report.total_cost(),
            report.total_cost() / budget * 100.0,
            if report.total_cost() <= budget + 1e-6 {
                "HELD"
            } else {
                "VIOLATED (bug!)"
            }
        );
        println!(
            "  p95 latency {:.0} ms | intervals where the budget constrained scaling: {constrained}\n",
            report.p95_ms().unwrap_or(f64::NAN)
        );
        assert!(report.total_cost() <= budget + 1e-6);
    }
    println!("Both strategies keep the monthly bill under the cap; they differ in when the surplus is spent (§5).");
}
