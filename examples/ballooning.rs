//! Ballooning walkthrough (§4.3, Figure 14) at the engine API level.
//!
//! Shows the probe mechanics directly: deflate the pool toward the next
//! smaller container's memory while watching disk reads; abort and restore
//! when the working set stops fitting.
//!
//! ```text
//! cargo run --release --example ballooning
//! ```

use dasr::containers::ResourceVector;
use dasr::engine::request::RequestBuilder;
use dasr::engine::{Engine, EngineConfig, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A container with 4 GB of memory hosting a ~2.5 GB working set.
    let container = ResourceVector::new(2.0, 4_096.0, 400.0, 20.0);
    let working_set_pages: u64 = 320_000; // ~2.5 GB at 8 KB pages
    let mut engine = Engine::new(EngineConfig::default(), container);
    engine.prewarm(working_set_pages);

    let mut rng = StdRng::seed_from_u64(1);
    let mut submit_minute = |engine: &mut Engine, minute: u64| {
        // 20 requests/s, each touching 20 working-set pages.
        for s in 0..60u64 {
            for r in 0..20u64 {
                let mut b = RequestBuilder::new().cpu(3_000);
                for _ in 0..20 {
                    b = b.read(rng.gen_range(0..working_set_pages));
                }
                engine.submit_at(
                    SimTime::from_mins(minute) + (s * 1_000_000 + r * 47_000),
                    b.build(),
                );
            }
        }
    };

    println!("minute | pool MB | disk reads/s | balloon");
    let mut baseline_reads = 0.0;
    for minute in 0..12u64 {
        submit_minute(&mut engine, minute);
        engine.run_until(SimTime::from_mins(minute + 1));
        let stats = engine.end_interval();
        let reads = stats.disk_reads_per_sec();

        // Controller logic, inlined for clarity (the real controller is
        // `dasr::core::estimator::BalloonController`):
        let state = if minute == 1 {
            baseline_reads = reads;
            // Probe toward the next smaller container's memory (2 GB).
            engine.start_balloon(2_048.0);
            "start probe -> 2048 MB"
        } else if engine.balloon_active() && reads > baseline_reads * 1.5 + 10.0 {
            engine.abort_balloon();
            "ABORT: disk I/O rose — working set no longer fits"
        } else if engine.balloon_active() {
            "deflating…"
        } else {
            ""
        };

        println!(
            "{:>6} | {:>7.0} | {:>12.1} | {}",
            minute,
            engine.pool_capacity_mb(),
            reads,
            state
        );
    }
    println!(
        "\nThe pool deflates slowly; once it cannot hold the working set, misses rise and the \
         probe aborts, restoring the full pool (Figure 14). Had I/O stayed flat, the probe \
         would have confirmed low memory demand and the container could shrink."
    );
}
