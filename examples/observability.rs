//! Fleet observability tour: run a small multi-tenant fleet under the
//! Auto policy and inspect the metrics registry, the structured run-event
//! stream, and their deterministic fleet-wide merge.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use dasr::core::obs::{CounterId, EventVerbosity, HistogramId, ObsConfig};
use dasr::core::policy::{AutoPolicy, ScalingPolicy};
use dasr::core::{tenant_seed, FleetRunner, RunConfig, TenantKnobs, TenantSpec};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    // A fleet of 8 tenants, each with a latency goal and a budget, each
    // seeing a bursty demand trace offset by its index.
    let minutes = 40;
    let tenants: Vec<TenantSpec<CpuIoWorkload>> = (0..8)
        .map(|i| {
            let mut rps = vec![5.0; minutes];
            for (m, r) in rps.iter_mut().enumerate() {
                if (6 + 2 * i..22 + 2 * i).contains(&m) {
                    *r = 140.0;
                }
            }
            let knobs = TenantKnobs::none()
                .with_latency_goal(LatencyGoal::P95(50.0))
                .with_budget(40.0 * minutes as f64);
            TenantSpec {
                cfg: RunConfig {
                    seed: tenant_seed(0xDA5A, i as u64),
                    knobs,
                    obs: ObsConfig {
                        verbosity: EventVerbosity::Notable,
                    },
                    ..RunConfig::default()
                },
                trace: Trace::new("burst", rps),
                workload: CpuIoWorkload::new(CpuIoConfig::default()),
            }
        })
        .collect();

    println!("Running {} tenants across OS threads…", tenants.len());
    let fleet = FleetRunner::with_available_parallelism().run_fleet(&tenants, |_, t| {
        Box::new(AutoPolicy::with_knobs(t.cfg.knobs)) as Box<dyn ScalingPolicy>
    });
    println!("{}", fleet.summary());

    // 1. Per-tenant observability: every RunReport carries its registry
    //    and event stream.
    let tenant0 = &fleet.reports[0];
    println!("\n-- Tenant 0 ({}): {}", tenant0.policy, tenant0.summary());
    print!("{}", tenant0.obs.summary());

    // 2. The fleet-wide registry is a deterministic merge in tenant-index
    //    order: bit-identical no matter how many threads ran the fleet.
    let metrics = fleet.fleet_metrics();
    println!("\n-- Fleet-wide metrics registry (merged) --");
    print!("{metrics}");
    println!(
        "\nresizes: {} issued / {} denied by cooldown / {} denied by budget",
        metrics.counter(CounterId::ResizesIssued),
        metrics.counter(CounterId::ResizesDeniedCooldown),
        metrics.counter(CounterId::ResizesDeniedBudget),
    );
    let steps = metrics.histogram(HistogramId::ResizeStep);
    println!(
        "resize steps: {} observed, mean {:+.2} rungs",
        steps.total(),
        steps.mean().unwrap_or(0.0)
    );

    // 3. The structured event stream: one JSON line per notable moment,
    //    tenant-stamped. Human-readable text is rendered from the same
    //    structures on demand — never stored.
    let obs = fleet.fleet_obs();
    println!("\n-- First 10 run events (rendered) --");
    for ev in obs.events.iter().take(10) {
        println!("  {ev}");
    }
    println!("\n-- Same events as JSONL (machine-readable sink) --");
    for line in obs.events_jsonl().lines().take(3) {
        println!("  {line}");
    }
    println!(
        "  … {} events total; full registry dump: MetricRegistry::to_jsonl()",
        obs.events.len()
    );
}
