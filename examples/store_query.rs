//! Record a 72-tenant × 1-day fleet run into a durable `dasr-store`,
//! then answer an operator question *from the store* — "which tenants
//! fired budget-throttle rules between 09:00 and 10:00?" — through the
//! streaming [`RecordCursor`] (proving with `VmHWM` that scans run in
//! O(batch) memory, not O(result)), and finally load an archived
//! recording back out and replay it exactly.
//!
//! ```text
//! cargo run --release --example store_query
//! ```
//!
//! The run streams straight to disk through a [`StoreSink`] while the
//! fleet executes (summary mode: no per-tenant reports are buffered), so
//! the store is the *only* copy of the event stream — exactly the
//! operating mode a long fleet sweep would use.

use dasr::core::obs::EventKind;
use dasr::core::{
    record_run, replay, tenant_seed, AutoPolicy, FleetRunner, ReplayDiff, RunConfig, TenantKnobs,
    TenantSpec,
};
use dasr::store::record::etag;
use dasr::store::{
    Query, RecordPayload, RunMeta, Shape, Store, StoreSource, StoredRecord, WriterConfig,
};
use dasr::telemetry::{LatencyGoal, TelemetrySource as _};
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use std::collections::BTreeSet;

const TENANTS: usize = 72;
const MINUTES: usize = 1440; // one day of 1-minute billing intervals
const FLEET_SEED: u64 = 0xDA7A;

/// Peak resident set size (VmHWM), in MiB, from /proc/self/status.
/// `None` off Linux — the example still runs, it just can't prove the
/// O(batch)-memory claim.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Every third tenant runs on a tight budget — those are the ones the
/// 09:00–10:00 demand peak pushes into budget throttling.
fn tenant_cfg(i: usize) -> RunConfig {
    // The aggressive budget strategy allows bursts of `B − (n−1)·Cmin`
    // above the cheapest rung (cost 7): 7.05/interval leaves a burst
    // allowance of ~72 cost units for the whole day, which the 09:00
    // demand peak exhausts — that is what makes these tenants throttle.
    let budget = if i.is_multiple_of(3) {
        7.05 * MINUTES as f64
    } else {
        60.0 * MINUTES as f64
    };
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(budget)
            .with_latency_goal(LatencyGoal::P95(150.0 + (i % 4) as f64 * 100.0)),
        seed: tenant_seed(FLEET_SEED, i as u64),
        prewarm_pages: 1_000,
        ..RunConfig::default()
    }
}

/// A diurnal trace: quiet overnight, sharp peak through the 09:00 hour.
fn tenant_trace(i: usize) -> Trace {
    let demand: Vec<f64> = (0..MINUTES)
        .map(|m| {
            let base = 4.0 + ((i + m) % 5) as f64 * 2.0;
            let peak = if (540..600).contains(&m) { 150.0 } else { 0.0 };
            base + peak
        })
        .collect();
    Trace::new("diurnal-day", demand)
}

fn fleet() -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..TENANTS)
        .map(|i| TenantSpec {
            cfg: tenant_cfg(i),
            trace: tenant_trace(i),
            workload: CpuIoWorkload::new(CpuIoConfig::small()),
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join("dasr_store_query");
    let _ = std::fs::remove_dir_all(&dir);

    // -- 1. Record: stream the whole fleet day into the store --
    println!(
        "Recording {TENANTS} tenants x {MINUTES} min into {}…",
        dir.display()
    );
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open store");
    let run = store.begin_run(
        RunMeta::new("auto", "cpuio", "diurnal-day", FLEET_SEED)
            .fleet(TENANTS as u64, MINUTES as u64),
    );
    let mut sink = store.event_sink(run).expect("sink");
    let tenants = fleet();
    let summary = FleetRunner::default().run_fleet_summary(
        &tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)),
        &mut sink,
    );
    assert!(sink.error().is_none(), "sink error: {:?}", sink.error());
    let manifest = store.end_run(run).expect("commit");
    println!("{}", summary.summary());
    println!("committed {run}: {} events\n", manifest.events);

    // -- 2. Query: who throttled on budget between 09:00 and 10:00? --
    // 1-minute intervals from midnight: 09:00–10:00 is [540, 600). The
    // streaming cursor answers this without materialising the window:
    // the query's kind bitmap prunes every batch that holds no
    // budget-throttle event before it is even read off disk, and
    // surviving records stream through one reusable batch buffer.
    let window = 540..600u64;
    let mut throttled = BTreeSet::new();
    let throttle_query = Query {
        intervals: Some(window.clone()),
        run: Some(run),
        shape: Shape::Events(1 << etag::BUDGET_THROTTLE),
        ..Query::default()
    };
    for rec in store.cursor(throttle_query.clone()).expect("cursor") {
        let rec = rec.expect("stream");
        if let RecordPayload::Event(ev) = &rec.payload {
            debug_assert!(matches!(ev.kind, EventKind::BudgetThrottle { .. }));
            throttled.insert(ev.tenant.expect("fleet events are stamped"));
        }
    }
    println!("-- Budget throttles, 09:00–10:00 --");
    println!(
        "{} of {TENANTS} tenants throttled: {:?}",
        throttled.len(),
        throttled
    );
    assert!(
        throttled.iter().all(|t| t.is_multiple_of(3)),
        "only the tight-budget tenants should throttle"
    );
    let window_fires = store.fire_counts(Some(run), window).expect("counts");
    println!("rule fires in the window: {window_fires}\n");

    // -- 3. Store economics: what did a tenant-day cost on disk? --
    let stats = store.stats().expect("stats");
    println!("-- Store stats --");
    println!(
        "{} segments, {} batches, {} records, {:.1} KiB on disk",
        stats.segments,
        stats.batches,
        stats.records,
        stats.bytes as f64 / 1024.0
    );
    println!(
        "≈ {:.2} KiB per tenant-day of events\n",
        stats.bytes as f64 / 1024.0 / TENANTS as f64
    );

    // -- 4. Archive the fleet's full recordings, replay one exactly --
    // One archive run holds every tenant's per-interval sample stream:
    // the store is now a six-figure record set, the scale the streaming
    // read path is built for.
    let archive = store.begin_run(
        RunMeta::new("auto", "cpuio", "diurnal-day", FLEET_SEED)
            .fleet(TENANTS as u64, MINUTES as u64),
    );
    let mut t0_live = None;
    for (i, t) in tenants.iter().enumerate() {
        let mut policy = AutoPolicy::with_knobs(t.cfg.knobs);
        let (live, mut recording) = record_run(&t.cfg, &t.trace, t.workload.clone(), &mut policy);
        recording.stamp_tenant(i as u64);
        store
            .append_recording(archive, &recording)
            .expect("archive");
        if i == 0 {
            t0_live = Some(live);
        }
    }
    store.end_run(archive).expect("commit");

    let src = StoreSource::open(&store, archive, Some(0)).expect("load archived run");
    println!("-- Replay from the store --");
    println!(
        "archived {archive}: policy={} seed={} intervals={}",
        src.header().policy,
        src.header().seed,
        src.intervals()
    );
    let t0 = &tenants[0];
    let loaded = store.load_recording(archive, Some(0)).expect("recording");
    let mut policy = AutoPolicy::with_knobs(t0.cfg.knobs);
    let replayed = replay(&t0.cfg, loaded, &mut policy);
    let diff = ReplayDiff::between(t0_live.as_ref().expect("tenant 0 ran"), &replayed);
    assert!(diff.identical(), "store replay must be exact: {diff}");
    println!("replay of the archived run reproduces the live decision trace exactly\n");

    // -- 5. Memory: streaming queries are O(batch), not O(result) --
    // Re-run the 09:00-10:00 throttle query over the now-archived store,
    // then stream every record in it, and check the process high-water
    // mark barely moves: the cursor hands out stack copies decoded from
    // one reusable batch buffer, so memory tracks the largest batch, not
    // the result set. Collecting the same scan into a Vec would need
    // `records x size_of::<StoredRecord>()`.
    let rss_before = peak_rss_mib();
    let mut in_window = 0u64;
    for rec in store.cursor(throttle_query.clone()).expect("cursor") {
        rec.expect("stream");
        in_window += 1;
    }
    let mut streamed = 0u64;
    for rec in store.cursor(Query::default()).expect("cursor") {
        rec.expect("stream");
        streamed += 1;
    }
    assert!(
        streamed >= 100_000,
        "memory claim needs a six-figure store, got {streamed} records"
    );
    println!("-- Streaming memory proof --");
    let collected_mib =
        streamed as f64 * std::mem::size_of::<StoredRecord>() as f64 / (1024.0 * 1024.0);
    if let (Some(before), Some(after)) = (rss_before, peak_rss_mib()) {
        let delta = after - before;
        println!(
            "streamed {streamed} records ({in_window} in the window query): peak RSS \
             +{delta:.1} MiB (collected, the result alone would hold {collected_mib:.0} MiB)"
        );
        assert!(
            delta < 16.0,
            "streaming scan must not materialise the result set: +{delta:.1} MiB"
        );
    } else {
        println!("streamed {streamed} records (no /proc/self/status; RSS proof skipped)");
    }

    store.close().expect("close");
}
