//! Record a 64-tenant × 1-day fleet run into a durable `dasr-store`,
//! then answer an operator question *from the store* — "which tenants
//! fired budget-throttle rules between 09:00 and 10:00?" — and finally
//! load an archived recording back out and replay it exactly.
//!
//! ```text
//! cargo run --release --example store_query
//! ```
//!
//! The run streams straight to disk through a [`StoreSink`] while the
//! fleet executes (summary mode: no per-tenant reports are buffered), so
//! the store is the *only* copy of the event stream — exactly the
//! operating mode a long fleet sweep would use.

use dasr::core::obs::EventKind;
use dasr::core::{
    record_run, replay, tenant_seed, AutoPolicy, FleetRunner, ReplayDiff, RunConfig, TenantKnobs,
    TenantSpec,
};
use dasr::store::{RecordPayload, RunMeta, Store, StoreSource, WriterConfig};
use dasr::telemetry::{LatencyGoal, TelemetrySource as _};
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};
use std::collections::BTreeSet;

const TENANTS: usize = 64;
const MINUTES: usize = 1440; // one day of 1-minute billing intervals
const FLEET_SEED: u64 = 0xDA7A;

/// Every third tenant runs on a tight budget — those are the ones the
/// 09:00–10:00 demand peak pushes into budget throttling.
fn tenant_cfg(i: usize) -> RunConfig {
    // The aggressive budget strategy allows bursts of `B − (n−1)·Cmin`
    // above the cheapest rung (cost 7): 7.05/interval leaves a burst
    // allowance of ~72 cost units for the whole day, which the 09:00
    // demand peak exhausts — that is what makes these tenants throttle.
    let budget = if i.is_multiple_of(3) {
        7.05 * MINUTES as f64
    } else {
        60.0 * MINUTES as f64
    };
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(budget)
            .with_latency_goal(LatencyGoal::P95(150.0 + (i % 4) as f64 * 100.0)),
        seed: tenant_seed(FLEET_SEED, i as u64),
        prewarm_pages: 1_000,
        ..RunConfig::default()
    }
}

/// A diurnal trace: quiet overnight, sharp peak through the 09:00 hour.
fn tenant_trace(i: usize) -> Trace {
    let demand: Vec<f64> = (0..MINUTES)
        .map(|m| {
            let base = 4.0 + ((i + m) % 5) as f64 * 2.0;
            let peak = if (540..600).contains(&m) { 150.0 } else { 0.0 };
            base + peak
        })
        .collect();
    Trace::new("diurnal-day", demand)
}

fn fleet() -> Vec<TenantSpec<CpuIoWorkload>> {
    (0..TENANTS)
        .map(|i| TenantSpec {
            cfg: tenant_cfg(i),
            trace: tenant_trace(i),
            workload: CpuIoWorkload::new(CpuIoConfig::small()),
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join("dasr_store_query");
    let _ = std::fs::remove_dir_all(&dir);

    // -- 1. Record: stream the whole fleet day into the store --
    println!(
        "Recording {TENANTS} tenants x {MINUTES} min into {}…",
        dir.display()
    );
    let mut store = Store::open_with(&dir, WriterConfig::default()).expect("open store");
    let run = store.begin_run(
        RunMeta::new("auto", "cpuio", "diurnal-day", FLEET_SEED)
            .fleet(TENANTS as u64, MINUTES as u64),
    );
    let mut sink = store.event_sink(run).expect("sink");
    let tenants = fleet();
    let summary = FleetRunner::default().run_fleet_summary(
        &tenants,
        |_, t| Box::new(AutoPolicy::with_knobs(t.cfg.knobs)),
        &mut sink,
    );
    assert!(sink.error().is_none(), "sink error: {:?}", sink.error());
    let manifest = store.end_run(run).expect("commit");
    println!("{}", summary.summary());
    println!("committed {run}: {} events\n", manifest.events);

    // -- 2. Query: who throttled on budget between 09:00 and 10:00? --
    // 1-minute intervals from midnight: 09:00–10:00 is [540, 600).
    let window = 540..600;
    let mut throttled = BTreeSet::new();
    for rec in store.scan_range(window.clone()).expect("scan") {
        if rec.run != run {
            continue;
        }
        if let RecordPayload::Event(ev) = &rec.payload {
            if matches!(ev.kind, EventKind::BudgetThrottle { .. }) {
                throttled.insert(ev.tenant.expect("fleet events are stamped"));
            }
        }
    }
    println!("-- Budget throttles, 09:00–10:00 --");
    println!(
        "{} of {TENANTS} tenants throttled: {:?}",
        throttled.len(),
        throttled
    );
    assert!(
        throttled.iter().all(|t| t.is_multiple_of(3)),
        "only the tight-budget tenants should throttle"
    );
    let window_fires = store.fire_counts(Some(run), window).expect("counts");
    println!("rule fires in the window: {window_fires}\n");

    // -- 3. Store economics: what did a tenant-day cost on disk? --
    let stats = store.stats().expect("stats");
    println!("-- Store stats --");
    println!(
        "{} segments, {} batches, {} records, {:.1} KiB on disk",
        stats.segments,
        stats.batches,
        stats.records,
        stats.bytes as f64 / 1024.0
    );
    println!(
        "≈ {:.2} KiB per tenant-day of events\n",
        stats.bytes as f64 / 1024.0 / TENANTS as f64
    );

    // -- 4. Archive a full recording and replay it from the store --
    let t0 = &tenants[0];
    let mut policy = AutoPolicy::with_knobs(t0.cfg.knobs);
    let (live, mut recording) = record_run(&t0.cfg, &t0.trace, t0.workload.clone(), &mut policy);
    recording.stamp_tenant(0);
    let archive = store.begin_run(
        RunMeta::new("auto", "cpuio", "diurnal-day", t0.cfg.seed).fleet(1, MINUTES as u64),
    );
    store
        .append_recording(archive, &recording)
        .expect("archive");
    store.end_run(archive).expect("commit");

    let src = StoreSource::open(&store, archive, Some(0)).expect("load archived run");
    println!("-- Replay from the store --");
    println!(
        "archived {archive}: policy={} seed={} intervals={}",
        src.header().policy,
        src.header().seed,
        src.intervals()
    );
    let loaded = store.load_recording(archive, Some(0)).expect("recording");
    let mut policy = AutoPolicy::with_knobs(t0.cfg.knobs);
    let replayed = replay(&t0.cfg, loaded, &mut policy);
    let diff = ReplayDiff::between(&live, &replayed);
    assert!(diff.identical(), "store replay must be exact: {diff}");
    println!("replay of the archived run reproduces the live decision trace exactly");

    store.close().expect("close");
}
