//! Record a 64-tenant fleet run to JSONL, then replay the recording
//! through two policies — the paper's Auto policy (same as the recording,
//! an exactness check) and the Util threshold baseline (a counterfactual
//! A/B) — and print the decision-trace diff summary.
//!
//! ```text
//! cargo run --release --example replay
//! ```
//!
//! The replayed telemetry is *frozen*: it reflects the containers the
//! recording policy chose, so the A/B answers "what would Util have
//! decided given the signals Auto's run produced" (offline policy
//! evaluation), not a re-simulation.

use dasr::core::{
    record_run, replay, replay_with, tenant_seed, AutoPolicy, ReplayDiff, RunConfig, RunRecording,
    TenantKnobs, UtilPolicy,
};
use dasr::telemetry::{CounterfactualActuator, LatencyGoal};
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};

const TENANTS: usize = 64;
const MINUTES: usize = 30;

fn tenant_cfg(i: usize) -> RunConfig {
    RunConfig {
        knobs: TenantKnobs::none()
            .with_budget(60.0 * MINUTES as f64)
            .with_latency_goal(LatencyGoal::P95(150.0 + (i % 4) as f64 * 100.0)),
        seed: tenant_seed(0x64F1, i as u64),
        prewarm_pages: 2_000,
        ..RunConfig::default()
    }
}

fn tenant_trace(i: usize) -> Trace {
    let demand: Vec<f64> = (0..MINUTES)
        .map(|m| 5.0 + ((i + m) % 6) as f64 * 5.0 + if m % 9 == 4 { 20.0 } else { 0.0 })
        .collect();
    Trace::new("fleet-mix", demand)
}

/// Splits a concatenated multi-tenant recording file back into per-tenant
/// recordings (each section starts at its header line).
fn split_fleet_jsonl(text: &str) -> Vec<RunRecording> {
    let mut sections: Vec<String> = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if line.contains("\"kind\":\"dasr-recording\"") {
            sections.push(String::new());
        }
        let section = sections.last_mut().expect("file starts with a header");
        section.push_str(line);
        section.push('\n');
    }
    sections
        .iter()
        .map(|s| RunRecording::from_jsonl(s).expect("recorded section parses"))
        .collect()
}

fn main() {
    // -- 1. Record: 64 tenants under the Auto policy -> one JSONL file --
    println!("Recording {TENANTS} tenants x {MINUTES} min under Auto…");
    let mut fleet_jsonl = String::new();
    let mut originals = Vec::with_capacity(TENANTS);
    for i in 0..TENANTS {
        let cfg = tenant_cfg(i);
        let mut policy = AutoPolicy::with_knobs(cfg.knobs);
        let (report, mut recording) = record_run(
            &cfg,
            &tenant_trace(i),
            CpuIoWorkload::new(CpuIoConfig::small()),
            &mut policy,
        );
        recording.stamp_tenant(i as u64);
        fleet_jsonl.push_str(&recording.to_jsonl());
        originals.push(report);
    }
    let path = std::env::temp_dir().join("dasr_fleet_recording.jsonl");
    std::fs::write(&path, &fleet_jsonl).expect("write recording");
    println!(
        "wrote {} ({} lines, {:.1} KiB)",
        path.display(),
        fleet_jsonl.lines().count(),
        fleet_jsonl.len() as f64 / 1024.0
    );

    // -- 2. Load the file back and replay --
    let loaded = std::fs::read_to_string(&path).expect("read recording");
    let recordings = split_fleet_jsonl(&loaded);
    assert_eq!(recordings.len(), TENANTS);

    // 2a. Same policy: every decision must reproduce exactly.
    let mut exact = 0usize;
    for (i, recording) in recordings.iter().enumerate() {
        let cfg = tenant_cfg(i);
        let mut policy = AutoPolicy::with_knobs(cfg.knobs);
        let replayed = replay(&cfg, recording.clone(), &mut policy);
        if ReplayDiff::between(&originals[i], &replayed).identical() {
            exact += 1;
        }
    }
    println!("\n-- Replay fidelity (Auto vs its own recording) --");
    println!("{exact}/{TENANTS} tenants reproduce their decision trace exactly");

    // 2b. Counterfactual A/B: Util over Auto's recorded signals.
    println!("\n-- Counterfactual A/B: Util replayed over Auto's recording --");
    let mut divergent_intervals = 0usize;
    let mut total_intervals = 0usize;
    let mut diverging_tenants = 0usize;
    let mut resizes_auto = 0u64;
    let mut resizes_util = 0u64;
    let mut sample_diffs: Vec<(usize, ReplayDiff)> = Vec::new();
    for (i, recording) in recordings.iter().enumerate() {
        let cfg = tenant_cfg(i);
        let mut util = UtilPolicy::new();
        let (counterfactual, ledger) = replay_with(
            &cfg,
            recording.clone(),
            &mut util,
            CounterfactualActuator::default(),
        );
        let diff = ReplayDiff::between(&originals[i], &counterfactual);
        total_intervals += diff.intervals;
        divergent_intervals += diff.divergent_targets;
        resizes_auto += diff.resizes_a;
        resizes_util += ledger.resizes;
        if !diff.identical() {
            diverging_tenants += 1;
            if sample_diffs.len() < 4 {
                sample_diffs.push((i, diff));
            }
        }
    }
    println!(
        "{diverging_tenants}/{TENANTS} tenants diverge on {divergent_intervals}/{total_intervals} \
         interval decisions"
    );
    println!("resizes: Auto {resizes_auto} (recorded) vs Util {resizes_util} (would-have)");
    for (i, diff) in &sample_diffs {
        println!("  tenant {i:>2}: {diff}");
    }
    println!(
        "\nNote: replayed signals are counterfactual — they were produced under Auto's \
         resizes, so Util's tally is an offline estimate, not a simulation."
    );
}
