//! Service-wide telemetry analysis (§2.2, §4.1): generate a synthetic
//! tenant fleet, quantify how often resource demands cross container
//! boundaries, and derive the wait-categorization thresholds the estimator
//! uses.
//!
//! ```text
//! cargo run --release --example fleet_analysis
//! ```

use dasr::containers::{Catalog, RESOURCE_KINDS};
use dasr::fleet::{derive_threshold_config, ChangeAnalysis, TenantPopulation};

fn main() {
    let tenants = 400;
    println!("Generating {tenants} tenants x 1 week of 5-minute telemetry…");
    let population = TenantPopulation::generate(tenants, 2026);
    let catalog = Catalog::azure_like();
    let analysis = ChangeAnalysis::analyze(&population, &catalog);

    println!("\n-- How often do demands cross container boundaries? (§2.2) --");
    println!(
        "changes within 60 min of the previous change: {:.0}% (paper: 86%)",
        analysis.iei_fraction_within(60.0) * 100.0
    );
    for n in [1.0, 6.0, 24.0] {
        println!(
            "tenants with ≥{n:>2} change events/day: {:.0}%",
            analysis.fraction_with_at_least_changes(n) * 100.0
        );
    }
    println!(
        "change step sizes: {:.0}% one rung, {:.0}% within two (paper: 90% / 98%) — \
         which is why the estimator only outputs ±2 steps (§4)",
        analysis.step_sizes.fraction(1) * 100.0,
        analysis.step_sizes.fraction_at_most(2) * 100.0
    );

    println!("\n-- Deriving wait thresholds from the fleet (§4.1) --");
    let thresholds = derive_threshold_config(30_000, 1.0, 7);
    for kind in RESOURCE_KINDS {
        let w = thresholds.waits_for(kind);
        println!(
            "{:>8}: LOW ≤ {:>9.0} ms, HIGH ≥ {:>9.0} ms, SIGNIFICANT ≥ {:>2.0}% of waits",
            kind.to_string(),
            w.low_ms,
            w.high_ms,
            w.significant_pct
        );
    }
    println!(
        "\nThese cut-offs come from the separation between the wait distributions of low- \
         and high-utilization tenant-intervals (Figure 6); a service re-derives them as \
         hardware and container SKUs evolve."
    );
}
