//! Quickstart: wire a simulated tenant database to the auto-scaler and
//! watch it react to a demand burst, with explanations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dasr::core::policy::AutoPolicy;
use dasr::core::runner::ClosedLoop;
use dasr::core::{RunConfig, TenantKnobs};
use dasr::telemetry::LatencyGoal;
use dasr::workloads::{CpuIoConfig, CpuIoWorkload, Trace};

fn main() {
    // 1. The tenant's knobs (§2.3): think in latency and money, not cores.
    let knobs = TenantKnobs::none().with_latency_goal(LatencyGoal::P95(200.0));

    // 2. A workload and a demand pattern: idle, then a burst, then idle.
    let workload = CpuIoWorkload::new(CpuIoConfig::default());
    let mut rps = vec![5.0; 70];
    for minute in 20..45 {
        // Ramp up over five minutes, plateau, ramp down.
        let ramp_in = (minute - 19) as f64 / 5.0;
        let ramp_out = (45 - minute) as f64 / 5.0;
        rps[minute] = 5.0 + 135.0 * ramp_in.min(ramp_out).min(1.0);
    }
    let trace = Trace::new("burst-demo", rps);

    // 3. The service side: container catalog, engine, telemetry — all
    //    defaults — plus a prewarmed buffer pool (the tenant is an
    //    already-running database).
    let cfg = RunConfig {
        knobs,
        prewarm_pages: workload.config().hot_pages,
        ..RunConfig::default()
    };

    // 4. Run the closed loop with the paper's Auto policy.
    let mut policy = AutoPolicy::with_knobs(knobs);
    let report = ClosedLoop::run(&cfg, &trace, workload, &mut policy);

    // 5. Inspect: one line per billing interval, with the explanation the
    //    auto-scaler gives for its action (§4).
    println!("minute | container | cost | p95 ms | decision");
    println!("-------+-----------+------+--------+---------");
    for i in &report.intervals {
        println!(
            "{:>6} | C{:<8} | {:>4.0} | {:>6.0} | {}",
            i.minute,
            i.rung,
            i.cost,
            i.latency_ms.unwrap_or(f64::NAN),
            i.explanations().join("; ")
        );
    }
    println!();
    println!("{}", report.summary());
    println!(
        "total cost {:.0} units — a static container sized for the burst would have cost {:.0}",
        report.total_cost(),
        cfg.catalog
            .iter()
            .find(|c| c.rung == 7)
            .map(|c| c.cost * report.intervals.len() as f64)
            .unwrap_or(f64::NAN),
    );
}
